//! The master merge plane: completing a query from per-shard results.
//!
//! Under sharded execution (§2's deployment model, [`crate::sharded`])
//! every shard runs the full pruned dataflow over its slice of the data
//! and completes its query locally; the master then merges the shard
//! outputs into the global answer. The merge re-applies the operator's
//! `complete` contract over the pruned union, which per query family
//! means:
//!
//! * **re-prune** — TOP N re-sorts and truncates the union, SKYLINE
//!   re-runs the exact dominance check over the shard skylines, DISTINCT
//!   re-normalizes the value union. Correct under *any* deterministic
//!   shard routing, because every global survivor survives its own shard.
//! * **key-union** — GROUP BY MAX takes the per-key max across shards;
//!   HAVING unions the per-shard qualifying keys. HAVING additionally
//!   *requires key-aligned routing* (all rows of a key on one shard, which
//!   [`crate::sharded`] guarantees) so local sums are global sums.
//! * **count-sum** — filtered counts and JOIN pair counts add up; JOIN
//!   requires shard-aligned co-partitioning (both sides routed by the join
//!   key with the same [`Sharder`](cheetah_core::Sharder)) so every
//!   matching pair meets inside exactly one shard.
//!
//! The ingest-side queueing model ([`MasterIngestModel`], Figure 9 and the
//! §4.6 master-bottleneck analysis) lives in `cheetah-net` next to the
//! link models; it is re-exported here because the master is where callers
//! meet it.
//!
//! # Incremental merging
//!
//! The merge semantics exist in two granularities over one state machine:
//!
//! * **batch-at-a-time** — the streamed runtime decomposes each shard
//!   output into [`MergeItem`]s ([`decompose_output`]), frames them over
//!   the wire, and folds them into a [`MergeState`] as they arrive
//!   ([`MergeState::ingest_batch`]): TOP N and SKYLINE *re-prune* their
//!   running survivors per batch, DISTINCT re-normalizes, GROUP BY /
//!   HAVING / filtered counts / JOIN pair counts fold associatively. The
//!   fold is order-insensitive across shards and batches, which is what
//!   makes overlapping the merge with still-running workers safe.
//! * **output-at-a-time** — the barrier path's [`merge_shard_outputs`] is
//!   the same fold, driven with every shard's complete output at once.
//!   One implementation, zero chance of the two paths diverging.

// The ingest model moved to the layer that owns link modelling; the
// re-export keeps `cheetah_db::MasterIngestModel` working.
pub use cheetah_net::MasterIngestModel;

use crate::ops;
use crate::query::{DbQuery, QueryOutput};
use crate::value::Value;
use bytes::{BufMut, Bytes, BytesMut};
use cheetah_net::{SurvivorBatch, WireError};
use std::collections::{BTreeMap, BTreeSet, HashSet};

/// Merge per-shard outputs of `q` into the global output, following the
/// per-operator semantics above. Every element of `outputs` must be the
/// variant `q` produces (they come from the same executor); a mismatch is
/// a bug in the caller, not a data error, and panics.
///
/// This is the batch plane driven to completion in one call: each output
/// is decomposed into its [`MergeItem`]s and folded through a
/// [`MergeState`].
pub fn merge_shard_outputs(q: &DbQuery, outputs: Vec<QueryOutput>) -> QueryOutput {
    // GROUP BY MAX folds whole shard maps key-union-wise. The fold is the
    // same entry-max as [`MergeState`]'s (associative, order-insensitive),
    // but map-into-map skips the per-item decompose/ingest machinery that
    // only the streamed plane's framing needs.
    if let DbQuery::GroupByMax { .. } = q {
        let mut acc: BTreeMap<Value, i64> = BTreeMap::new();
        for o in outputs {
            let m = match o {
                QueryOutput::KeyedInts(m) => m,
                other => mismatch("KeyedInts", &other),
            };
            if acc.is_empty() {
                acc = m;
                continue;
            }
            for (k, v) in m {
                acc.entry(k).and_modify(|x| *x = (*x).max(v)).or_insert(v);
            }
        }
        return QueryOutput::KeyedInts(acc);
    }
    let mut state = MergeState::new(q);
    for o in outputs {
        state.ingest_batch(decompose_output(q, o));
    }
    state.finish()
}

/// One unit of mergeable survivor state — the granularity the streamed
/// runtime ships between a shard worker and the master merge plane.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MergeItem {
    /// A partial count (filtered rows, or JOIN pairs — the owning
    /// [`MergeState`] knows which its query sums).
    Count(u64),
    /// One DISTINCT survivor value.
    Value(Value),
    /// One TOP N order-column survivor.
    Top(i64),
    /// One SKYLINE survivor point.
    Point(Vec<i64>),
    /// One `key → aggregate` pair (GROUP BY MAX / HAVING).
    Keyed(Value, i64),
}

const ITEM_COUNT: u8 = 1;
const ITEM_VALUE_INT: u8 = 2;
const ITEM_VALUE_STR: u8 = 3;
const ITEM_TOP: u8 = 4;
const ITEM_POINT: u8 = 5;
const ITEM_KEYED_INT: u8 = 6;
const ITEM_KEYED_STR: u8 = 7;

impl MergeItem {
    /// Serialize into the opaque item payload of a
    /// [`SurvivorBatch`] frame.
    pub fn encode(&self) -> Bytes {
        let mut b = BytesMut::with_capacity(16);
        self.encode_into(&mut b);
        b.freeze()
    }

    /// Serialize by appending to `b` — the allocation-free sibling of
    /// [`encode`](MergeItem::encode) that the streamed runtime uses to
    /// write items straight into a frame's shared arena
    /// ([`FrameBuilder::push_with`](cheetah_net::FrameBuilder::push_with)).
    pub fn encode_into(&self, b: &mut BytesMut) {
        match self {
            MergeItem::Count(c) => {
                b.put_u8(ITEM_COUNT);
                b.put_u64(*c);
            }
            MergeItem::Value(Value::Int(v)) => {
                b.put_u8(ITEM_VALUE_INT);
                b.put_u64(*v as u64);
            }
            MergeItem::Value(Value::Str(s)) => {
                b.put_u8(ITEM_VALUE_STR);
                put_str(b, s);
            }
            MergeItem::Top(v) => {
                b.put_u8(ITEM_TOP);
                b.put_u64(*v as u64);
            }
            MergeItem::Point(p) => {
                b.put_u8(ITEM_POINT);
                b.put_u16(p.len() as u16);
                for &d in p {
                    b.put_u64(d as u64);
                }
            }
            MergeItem::Keyed(Value::Int(k), v) => {
                b.put_u8(ITEM_KEYED_INT);
                b.put_u64(*k as u64);
                b.put_u64(*v as u64);
            }
            MergeItem::Keyed(Value::Str(k), v) => {
                b.put_u8(ITEM_KEYED_STR);
                put_str(b, k);
                b.put_u64(*v as u64);
            }
        }
    }

    /// Parse an item payload back; defensive like the wire formats —
    /// malformed payloads are typed [`WireError`]s, never panics.
    pub fn decode(buf: Bytes) -> Result<MergeItem, WireError> {
        Self::decode_slice(&buf)
    }

    /// [`decode`](MergeItem::decode) over a borrowed slice — the master
    /// merge plane reads items directly out of a columnar frame's arena
    /// without materializing per-item buffers.
    pub fn decode_slice(buf: &[u8]) -> Result<MergeItem, WireError> {
        let mut buf = buf;
        let tag = take_u8(&mut buf)?;
        let item = match tag {
            ITEM_COUNT => MergeItem::Count(take_u64(&mut buf)?),
            ITEM_VALUE_INT => MergeItem::Value(Value::Int(take_u64(&mut buf)? as i64)),
            ITEM_VALUE_STR => MergeItem::Value(Value::Str(take_str(&mut buf)?)),
            ITEM_TOP => MergeItem::Top(take_u64(&mut buf)? as i64),
            ITEM_POINT => {
                let dims = take_u16(&mut buf)? as usize;
                let mut p = Vec::with_capacity(dims.min(64));
                for _ in 0..dims {
                    p.push(take_u64(&mut buf)? as i64);
                }
                MergeItem::Point(p)
            }
            ITEM_KEYED_INT => {
                let k = take_u64(&mut buf)? as i64;
                MergeItem::Keyed(Value::Int(k), take_u64(&mut buf)? as i64)
            }
            ITEM_KEYED_STR => {
                let k = take_str(&mut buf)?;
                MergeItem::Keyed(Value::Str(k), take_u64(&mut buf)? as i64)
            }
            other => return Err(WireError::BadType(other)),
        };
        // A complete item consumes its payload exactly; trailing bytes
        // mean the encoder and decoder disagree about the shape.
        if !buf.is_empty() {
            return Err(WireError::BadPayload);
        }
        Ok(item)
    }
}

fn put_str(b: &mut BytesMut, s: &str) {
    b.put_u32(s.len() as u32);
    b.put_slice(s.as_bytes());
}

fn take_u8(buf: &mut &[u8]) -> Result<u8, WireError> {
    let (&v, rest) = buf.split_first().ok_or(WireError::Truncated)?;
    *buf = rest;
    Ok(v)
}

fn take_u16(buf: &mut &[u8]) -> Result<u16, WireError> {
    if buf.len() < 2 {
        return Err(WireError::Truncated);
    }
    let (h, rest) = buf.split_at(2);
    *buf = rest;
    Ok(u16::from_be_bytes([h[0], h[1]]))
}

fn take_u64(buf: &mut &[u8]) -> Result<u64, WireError> {
    if buf.len() < 8 {
        return Err(WireError::Truncated);
    }
    let (h, rest) = buf.split_at(8);
    *buf = rest;
    Ok(u64::from_be_bytes(h.try_into().expect("8-byte split")))
}

fn take_str(buf: &mut &[u8]) -> Result<String, WireError> {
    if buf.len() < 4 {
        return Err(WireError::Truncated);
    }
    let (h, rest) = buf.split_at(4);
    let len = u32::from_be_bytes([h[0], h[1], h[2], h[3]]) as usize;
    if rest.len() < len {
        return Err(WireError::Truncated);
    }
    let (s, tail) = rest.split_at(len);
    let s = std::str::from_utf8(s).map_err(|_| WireError::BadPayload)?;
    *buf = tail;
    Ok(s.to_string())
}

/// Decompose one shard's completed output into its [`MergeItem`]s. The
/// output must be the variant `q` produces; a mismatch panics, exactly
/// like [`merge_shard_outputs`].
pub fn decompose_output(q: &DbQuery, output: QueryOutput) -> Vec<MergeItem> {
    match (q, output) {
        (DbQuery::FilterCount { .. }, QueryOutput::Count(c)) => vec![MergeItem::Count(c)],
        (DbQuery::FilterCount { .. }, other) => mismatch("Count", &other),
        (DbQuery::Join { .. }, QueryOutput::JoinPairs(p)) => vec![MergeItem::Count(p)],
        (DbQuery::Join { .. }, other) => mismatch("JoinPairs", &other),
        (DbQuery::Distinct { .. }, QueryOutput::Values(v)) => {
            v.into_iter().map(MergeItem::Value).collect()
        }
        (DbQuery::Distinct { .. }, other) => mismatch("Values", &other),
        (DbQuery::TopN { .. }, QueryOutput::TopValues(v)) => {
            v.into_iter().map(MergeItem::Top).collect()
        }
        (DbQuery::TopN { .. }, other) => mismatch("TopValues", &other),
        (DbQuery::Skyline { .. }, QueryOutput::Points(p)) => {
            p.into_iter().map(MergeItem::Point).collect()
        }
        (DbQuery::Skyline { .. }, other) => mismatch("Points", &other),
        (DbQuery::GroupByMax { .. } | DbQuery::HavingSum { .. }, QueryOutput::KeyedInts(m)) => {
            m.into_iter().map(|(k, v)| MergeItem::Keyed(k, v)).collect()
        }
        (DbQuery::GroupByMax { .. } | DbQuery::HavingSum { .. }, other) => {
            mismatch("KeyedInts", &other)
        }
    }
}

fn mismatch(expected: &str, got: &QueryOutput) -> ! {
    panic!("shard output variant mismatch: expected {expected}, got {got:?}")
}

/// TOP N keeps at most this many values beyond `n` before re-pruning, so
/// the running state stays bounded however many batches arrive.
const TOPN_SLACK: usize = 256;

/// The incremental master merge plane: per-operator survivor state that
/// folds [`MergeItem`]s as batches arrive and yields the global
/// [`QueryOutput`] at [`finish`](MergeState::finish).
///
/// The fold is associative and order-insensitive across shards and
/// batches — re-prune (TOP N / SKYLINE / DISTINCT), key-union
/// (GROUP BY MAX / HAVING), and count-sum (filter / JOIN) all commute —
/// so the streamed runtime may interleave batches from different shards
/// freely and still match the barrier merge bit for bit.
#[derive(Debug, Clone)]
pub struct MergeState {
    acc: Acc,
    ingested: u64,
    /// `(shard, seq)` frames already folded — the paper's master-side
    /// dedup, lifted to the merge plane so retransmitted survivor batches
    /// are idempotent.
    seen: HashSet<(u32, u64)>,
    duplicate_batches: u64,
}

#[derive(Debug, Clone)]
enum Acc {
    Count(u64),
    JoinPairs(u64),
    Values(BTreeSet<Value>),
    Top { n: usize, vals: Vec<i64> },
    Points(Vec<Vec<i64>>),
    GroupMax(BTreeMap<Value, i64>),
    Having(BTreeMap<Value, i64>),
}

impl MergeState {
    /// Fresh merge state for `q`.
    pub fn new(q: &DbQuery) -> Self {
        let acc = match q {
            DbQuery::FilterCount { .. } => Acc::Count(0),
            DbQuery::Join { .. } => Acc::JoinPairs(0),
            DbQuery::Distinct { .. } => Acc::Values(BTreeSet::new()),
            DbQuery::TopN { n, .. } => Acc::Top { n: *n, vals: Vec::new() },
            DbQuery::Skyline { .. } => Acc::Points(Vec::new()),
            DbQuery::GroupByMax { .. } => Acc::GroupMax(BTreeMap::new()),
            DbQuery::HavingSum { .. } => Acc::Having(BTreeMap::new()),
        };
        Self { acc, ingested: 0, seen: HashSet::new(), duplicate_batches: 0 }
    }

    /// Fold one item. The item kind must match the query's (a mismatch is
    /// a caller bug and panics, like [`merge_shard_outputs`]).
    pub fn ingest(&mut self, item: MergeItem) {
        self.ingested += 1;
        match (&mut self.acc, item) {
            (Acc::Count(acc), MergeItem::Count(c)) => *acc += c,
            (Acc::JoinPairs(acc), MergeItem::Count(p)) => *acc += p,
            (Acc::Values(set), MergeItem::Value(v)) => {
                set.insert(v);
            }
            (Acc::Top { n, vals }, MergeItem::Top(v)) => {
                vals.push(v);
                if vals.len() > *n + TOPN_SLACK {
                    reprune_top(vals, *n);
                }
            }
            (Acc::Points(pts), MergeItem::Point(p)) => pts.push(p),
            (Acc::GroupMax(map), MergeItem::Keyed(k, v)) => {
                map.entry(k).and_modify(|x| *x = (*x).max(v)).or_insert(v);
            }
            (Acc::Having(map), MergeItem::Keyed(k, v)) => {
                // Key-aligned routing puts every row of a key on one
                // shard, so shard-local sums (and the threshold decision)
                // are global — later duplicates would carry the same sum.
                map.insert(k, v);
            }
            (_, item) => panic!("merge item variant mismatch: {item:?} for this query"),
        }
    }

    /// Fold a whole batch, then re-prune the running survivor state
    /// (TOP N truncates to `n`, SKYLINE drops dominated points) so state
    /// stays bounded by output size between batches, not by input size.
    pub fn ingest_batch(&mut self, items: impl IntoIterator<Item = MergeItem>) {
        for item in items {
            self.ingest(item);
        }
        self.compact();
    }

    /// Fold a whole batch of *encoded* items, reading each straight out
    /// of a borrowed slice ([`MergeItem::decode_slice`]) — the zero-copy
    /// path the streamed runtime drives with the item windows of a
    /// columnar [`SurvivorBatch`]. Compacts
    /// once at the end, like [`ingest_batch`](MergeState::ingest_batch);
    /// a malformed item is a typed [`WireError`], with the items before
    /// it already folded (the caller abandons the run, not the state).
    pub fn ingest_slices<'a>(
        &mut self,
        slices: impl IntoIterator<Item = &'a [u8]>,
    ) -> Result<(), WireError> {
        for s in slices {
            self.ingest(MergeItem::decode_slice(s)?);
        }
        self.compact();
        Ok(())
    }

    /// Fold one framed [`SurvivorBatch`] *idempotently*: a frame whose
    /// `(shard, seq)` identity was already folded is counted and skipped,
    /// so a lossy channel may deliver retransmitted or duplicated frames
    /// in any order without perturbing the merge. Returns `Ok(true)` when
    /// the batch was new (and folded), `Ok(false)` for a discarded
    /// duplicate. This is the only ingest door the lossy runtime uses —
    /// the dedup lives *in* the merge plane, not in each transport.
    pub fn ingest_survivor_batch(&mut self, batch: &SurvivorBatch) -> Result<bool, WireError> {
        if !self.seen.insert((batch.shard, batch.seq)) {
            self.duplicate_batches += 1;
            return Ok(false);
        }
        self.ingest_slices(batch.items())?;
        Ok(true)
    }

    /// Retransmitted/duplicated frames discarded by
    /// [`ingest_survivor_batch`](MergeState::ingest_survivor_batch).
    pub fn duplicate_batches(&self) -> u64 {
        self.duplicate_batches
    }

    /// Items folded so far.
    pub fn ingested(&self) -> u64 {
        self.ingested
    }

    fn compact(&mut self) {
        match &mut self.acc {
            Acc::Top { n, vals } => reprune_top(vals, *n),
            Acc::Points(pts) if !pts.is_empty() => *pts = ops::skyline_of(pts),
            _ => {}
        }
    }

    /// Complete the merge: re-prune once more and emit the normalized
    /// global output (equal to the corresponding barrier merge).
    pub fn finish(mut self) -> QueryOutput {
        self.compact();
        match self.acc {
            Acc::Count(c) => QueryOutput::Count(c),
            Acc::JoinPairs(p) => QueryOutput::JoinPairs(p),
            Acc::Values(set) => QueryOutput::Values(set.into_iter().collect()),
            Acc::Top { vals, .. } => QueryOutput::top_values(vals),
            Acc::Points(pts) => QueryOutput::points(pts),
            Acc::GroupMax(map) | Acc::Having(map) => QueryOutput::KeyedInts(map),
        }
    }
}

fn reprune_top(vals: &mut Vec<i64>, n: usize) {
    if vals.len() > n {
        vals.sort_unstable_by(|a, b| b.cmp(a));
        vals.truncate(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{DbPredicate, IntCmp};

    fn filter_q() -> DbQuery {
        DbQuery::FilterCount { pred: DbPredicate::CmpInt { col: 0, op: IntCmp::Lt, lit: 1 } }
    }

    #[test]
    fn counts_and_join_pairs_sum() {
        let merged = merge_shard_outputs(
            &filter_q(),
            vec![QueryOutput::Count(3), QueryOutput::Count(0), QueryOutput::Count(4)],
        );
        assert_eq!(merged, QueryOutput::Count(7));
        let joined = merge_shard_outputs(
            &DbQuery::Join { left_key: 0, right_key: 0 },
            vec![QueryOutput::JoinPairs(5), QueryOutput::JoinPairs(2)],
        );
        assert_eq!(joined, QueryOutput::JoinPairs(7));
    }

    #[test]
    fn distinct_union_renormalizes() {
        let merged = merge_shard_outputs(
            &DbQuery::Distinct { col: 0 },
            vec![
                QueryOutput::values(vec![Value::Int(2), Value::Int(1)]),
                QueryOutput::values(vec![Value::Int(2), Value::Int(3)]),
            ],
        );
        assert_eq!(merged, QueryOutput::Values(vec![Value::Int(1), Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn topn_re_prunes_to_n() {
        let merged = merge_shard_outputs(
            &DbQuery::TopN { order_col: 0, n: 3 },
            vec![QueryOutput::top_values(vec![9, 7, 5]), QueryOutput::top_values(vec![8, 6])],
        );
        assert_eq!(merged, QueryOutput::TopValues(vec![9, 8, 7]));
    }

    #[test]
    fn skyline_re_prunes_cross_shard_domination() {
        // Shard 0's champion (3,3) dominates shard 1's survivors.
        let merged = merge_shard_outputs(
            &DbQuery::Skyline { cols: vec![0, 1] },
            vec![
                QueryOutput::points(vec![vec![3, 3]]),
                QueryOutput::points(vec![vec![1, 2], vec![2, 1]]),
            ],
        );
        assert_eq!(merged, QueryOutput::Points(vec![vec![3, 3]]));
    }

    #[test]
    fn groupby_key_union_takes_the_max() {
        let m1: BTreeMap<Value, i64> =
            [(Value::Int(1), 5), (Value::Int(2), 9)].into_iter().collect();
        let m2: BTreeMap<Value, i64> =
            [(Value::Int(1), 8), (Value::Int(3), 1)].into_iter().collect();
        let merged = merge_shard_outputs(
            &DbQuery::GroupByMax { key_col: 0, val_col: 1 },
            vec![QueryOutput::KeyedInts(m1), QueryOutput::KeyedInts(m2)],
        );
        let want: BTreeMap<Value, i64> =
            [(Value::Int(1), 8), (Value::Int(2), 9), (Value::Int(3), 1)].into_iter().collect();
        assert_eq!(merged, QueryOutput::KeyedInts(want));
    }

    #[test]
    fn having_unions_disjoint_key_sets() {
        let m1: BTreeMap<Value, i64> = [(Value::Int(1), 100)].into_iter().collect();
        let m2: BTreeMap<Value, i64> = [(Value::Int(2), 200)].into_iter().collect();
        let merged = merge_shard_outputs(
            &DbQuery::HavingSum { key_col: 0, val_col: 1, threshold: 50 },
            vec![QueryOutput::KeyedInts(m1), QueryOutput::KeyedInts(m2)],
        );
        let want: BTreeMap<Value, i64> =
            [(Value::Int(1), 100), (Value::Int(2), 200)].into_iter().collect();
        assert_eq!(merged, QueryOutput::KeyedInts(want));
    }

    #[test]
    fn empty_shard_list_yields_empty_output() {
        assert_eq!(merge_shard_outputs(&filter_q(), vec![]), QueryOutput::Count(0));
        assert_eq!(
            merge_shard_outputs(&DbQuery::Distinct { col: 0 }, vec![]),
            QueryOutput::Values(vec![])
        );
    }

    #[test]
    #[should_panic(expected = "variant mismatch")]
    fn variant_mismatch_is_a_loud_bug() {
        let _ = merge_shard_outputs(&filter_q(), vec![QueryOutput::JoinPairs(1)]);
    }

    // ------------------------------------------------------------------
    // The incremental plane: codec + batch-order invariance
    // ------------------------------------------------------------------

    #[test]
    fn merge_items_round_trip_through_the_codec() {
        let items = vec![
            MergeItem::Count(u64::MAX),
            MergeItem::Value(Value::Int(-5)),
            MergeItem::Value(Value::Str("agent-λ".into())),
            MergeItem::Value(Value::Str(String::new())),
            MergeItem::Top(i64::MIN),
            MergeItem::Point(vec![]),
            MergeItem::Point(vec![3, -1, i64::MAX]),
            MergeItem::Keyed(Value::Int(7), -9),
            MergeItem::Keyed(Value::Str("key-0".into()), 1_000_000),
        ];
        for item in items {
            let back = MergeItem::decode(item.encode()).expect("decode back");
            assert_eq!(back, item);
        }
    }

    #[test]
    fn merge_item_decode_is_defensive() {
        assert_eq!(MergeItem::decode(Bytes::new()), Err(WireError::Truncated));
        assert_eq!(MergeItem::decode(Bytes::from(vec![99u8])), Err(WireError::BadType(99)));
        // Every truncation of a valid payload errors instead of panicking.
        let full = MergeItem::Keyed(Value::Str("hello".into()), 42).encode();
        for len in 0..full.len() {
            assert!(MergeItem::decode(full.slice(0..len)).is_err(), "len {len}");
        }
        // Corruption is not misreported as truncation: invalid UTF-8 in a
        // complete string payload, and trailing bytes beyond the item,
        // are both payload errors.
        let bad_utf8 = Bytes::from(vec![3u8, 0, 0, 0, 1, 0xFF]);
        assert_eq!(MergeItem::decode(bad_utf8), Err(WireError::BadPayload));
        let mut trailing = MergeItem::Top(9).encode().to_vec();
        trailing.push(0);
        assert_eq!(MergeItem::decode(Bytes::from(trailing)), Err(WireError::BadPayload));
    }

    #[test]
    fn encode_into_matches_encode_and_slices_fold_like_items() {
        let items = vec![
            MergeItem::Count(7),
            MergeItem::Value(Value::Str("agent-λ".into())),
            MergeItem::Top(-3),
            MergeItem::Point(vec![1, 2, 3]),
            MergeItem::Keyed(Value::Str("k".into()), 9),
        ];
        // One shared arena, encoded once…
        let mut arena = BytesMut::with_capacity(64);
        let mut ends = Vec::new();
        for item in &items {
            item.encode_into(&mut arena);
            ends.push(arena.len());
        }
        // …must contain exactly the per-item encodings back to back.
        let concat: Vec<u8> = items.iter().flat_map(|i| i.encode().to_vec()).collect();
        assert_eq!(&arena[..], &concat[..]);
        // Folding the slices equals folding the decoded items.
        let q = DbQuery::TopN { order_col: 0, n: 2 };
        let tops = [MergeItem::Top(5), MergeItem::Top(9), MergeItem::Top(1)];
        let mut by_item = MergeState::new(&q);
        by_item.ingest_batch(tops.iter().cloned());
        let mut by_slice = MergeState::new(&q);
        let encoded: Vec<Bytes> = tops.iter().map(MergeItem::encode).collect();
        by_slice.ingest_slices(encoded.iter().map(|b| &b[..])).expect("valid slices");
        assert_eq!(by_slice.ingested(), 3);
        assert_eq!(by_item.finish(), by_slice.finish());
        // A malformed slice surfaces as a typed error, not a panic.
        let mut st = MergeState::new(&q);
        assert_eq!(st.ingest_slices([&[][..]]), Err(WireError::Truncated));
        assert_eq!(st.ingest_slices([&[99u8][..]]), Err(WireError::BadType(99)));
    }

    #[test]
    fn incremental_batches_equal_the_barrier_merge_in_any_order() {
        // Fold the same shard outputs item-by-item, in per-shard batches,
        // and in reversed interleaved order: all must equal the one-shot
        // barrier merge.
        let q = DbQuery::TopN { order_col: 0, n: 3 };
        let outputs =
            vec![QueryOutput::top_values(vec![9, 7, 5]), QueryOutput::top_values(vec![8, 6, 4])];
        let barrier = merge_shard_outputs(&q, outputs.clone());

        let items: Vec<MergeItem> =
            outputs.iter().flat_map(|o| decompose_output(&q, o.clone())).collect();
        for chunk in [1usize, 2, 6] {
            let mut fwd = MergeState::new(&q);
            for c in items.chunks(chunk) {
                fwd.ingest_batch(c.to_vec());
            }
            assert_eq!(fwd.finish(), barrier, "chunk {chunk}");
            let mut rev = MergeState::new(&q);
            rev.ingest_batch(items.iter().rev().cloned().collect::<Vec<_>>());
            assert_eq!(rev.finish(), barrier, "reversed, chunk {chunk}");
        }
    }

    #[test]
    fn incremental_skyline_and_groupby_fold_per_batch() {
        let q = DbQuery::Skyline { cols: vec![0, 1] };
        let mut st = MergeState::new(&q);
        st.ingest_batch(vec![MergeItem::Point(vec![1, 2]), MergeItem::Point(vec![2, 1])]);
        st.ingest_batch(vec![MergeItem::Point(vec![3, 3])]);
        assert_eq!(st.ingested(), 3);
        assert_eq!(st.finish(), QueryOutput::Points(vec![vec![3, 3]]));

        let q = DbQuery::GroupByMax { key_col: 0, val_col: 1 };
        let mut st = MergeState::new(&q);
        st.ingest_batch(vec![MergeItem::Keyed(Value::Int(1), 5)]);
        st.ingest_batch(vec![
            MergeItem::Keyed(Value::Int(1), 9),
            MergeItem::Keyed(Value::Int(2), 1),
        ]);
        let want: BTreeMap<Value, i64> =
            [(Value::Int(1), 9), (Value::Int(2), 1)].into_iter().collect();
        assert_eq!(st.finish(), QueryOutput::KeyedInts(want));
    }

    #[test]
    fn topn_state_stays_bounded_across_many_batches() {
        let q = DbQuery::TopN { order_col: 0, n: 4 };
        let mut st = MergeState::new(&q);
        for round in 0..50i64 {
            st.ingest_batch((0..100).map(|i| MergeItem::Top(round * 100 + i)));
        }
        // After every batch the state re-prunes to n.
        assert_eq!(st.finish(), QueryOutput::TopValues(vec![4999, 4998, 4997, 4996]));
    }

    #[test]
    #[should_panic(expected = "variant mismatch")]
    fn merge_state_rejects_cross_query_items() {
        let mut st = MergeState::new(&DbQuery::Distinct { col: 0 });
        st.ingest(MergeItem::Top(5));
    }

    // ------------------------------------------------------------------
    // Frame-level idempotence: the merge plane's (shard, seq) dedup.
    // ------------------------------------------------------------------

    fn count_frame(shard: u32, seq: u64, counts: &[u64]) -> cheetah_net::SurvivorBatch {
        let encoded: Vec<Bytes> = counts.iter().map(|&c| MergeItem::Count(c).encode()).collect();
        cheetah_net::SurvivorBatch::parse(cheetah_net::emit_batch(shard, seq, encoded.iter()))
            .expect("frame parses")
    }

    #[test]
    fn retransmitted_batches_fold_exactly_once() {
        let q = filter_q();
        let mut st = MergeState::new(&q);
        let b0 = count_frame(0, 0, &[3]);
        let b1 = count_frame(0, 1, &[4]);
        assert_eq!(st.ingest_survivor_batch(&b0), Ok(true));
        assert_eq!(st.ingest_survivor_batch(&b1), Ok(true));
        // A retransmit of either frame is discarded, not re-folded.
        assert_eq!(st.ingest_survivor_batch(&b0), Ok(false));
        assert_eq!(st.ingest_survivor_batch(&b1), Ok(false));
        assert_eq!(st.ingest_survivor_batch(&b0), Ok(false));
        assert_eq!(st.duplicate_batches(), 3);
        assert_eq!(st.finish(), QueryOutput::Count(7));
    }

    #[test]
    fn same_seq_on_different_shards_is_not_a_duplicate() {
        let q = filter_q();
        let mut st = MergeState::new(&q);
        assert_eq!(st.ingest_survivor_batch(&count_frame(0, 0, &[1])), Ok(true));
        assert_eq!(st.ingest_survivor_batch(&count_frame(1, 0, &[2])), Ok(true));
        assert_eq!(st.ingest_survivor_batch(&count_frame(2, 0, &[4])), Ok(true));
        assert_eq!(st.duplicate_batches(), 0);
        assert_eq!(st.finish(), QueryOutput::Count(7));
    }

    #[test]
    fn duplicated_and_reordered_frames_match_the_clean_fold() {
        // TOP N is the family where double-folding would actually corrupt
        // the answer if dedup failed (Count would just double).
        let q = DbQuery::TopN { order_col: 0, n: 2 };
        let frames: Vec<cheetah_net::SurvivorBatch> = [(0u32, vec![5i64, 9]), (1u32, vec![7, 1])]
            .iter()
            .flat_map(|(shard, vals)| {
                vals.iter().enumerate().map(move |(seq, &v)| {
                    let item = MergeItem::Top(v).encode();
                    cheetah_net::SurvivorBatch::parse(cheetah_net::emit_batch(
                        *shard,
                        seq as u64,
                        [item.as_ref()],
                    ))
                    .unwrap()
                })
            })
            .collect();
        let mut clean = MergeState::new(&q);
        for f in &frames {
            assert_eq!(clean.ingest_survivor_batch(f), Ok(true));
        }
        // Deliver reversed, with every frame duplicated twice.
        let mut lossy = MergeState::new(&q);
        for f in frames.iter().rev() {
            lossy.ingest_survivor_batch(f).unwrap();
            lossy.ingest_survivor_batch(f).unwrap();
            lossy.ingest_survivor_batch(f).unwrap();
        }
        assert_eq!(lossy.duplicate_batches(), 2 * frames.len() as u64);
        assert_eq!(lossy.ingested(), clean.ingested());
        assert_eq!(lossy.finish(), clean.finish());
    }

    #[test]
    fn ingest_model_reexport_still_works() {
        // PR compat: `cheetah_db::MasterIngestModel` predates the move of
        // the model into cheetah-net.
        let m = MasterIngestModel::default_rack();
        assert!(m.blocking_latency(1_000) > 0.0);
    }
}

//! The master merge plane: completing a query from per-shard results.
//!
//! Under sharded execution (§2's deployment model, [`crate::sharded`])
//! every shard runs the full pruned dataflow over its slice of the data
//! and completes its query locally; the master then merges the shard
//! outputs into the global answer. The merge re-applies the operator's
//! `complete` contract over the pruned union, which per query family
//! means:
//!
//! * **re-prune** — TOP N re-sorts and truncates the union, SKYLINE
//!   re-runs the exact dominance check over the shard skylines, DISTINCT
//!   re-normalizes the value union. Correct under *any* deterministic
//!   shard routing, because every global survivor survives its own shard.
//! * **key-union** — GROUP BY MAX takes the per-key max across shards;
//!   HAVING unions the per-shard qualifying keys. HAVING additionally
//!   *requires key-aligned routing* (all rows of a key on one shard, which
//!   [`crate::sharded`] guarantees) so local sums are global sums.
//! * **count-sum** — filtered counts and JOIN pair counts add up; JOIN
//!   requires shard-aligned co-partitioning (both sides routed by the join
//!   key with the same [`Sharder`](cheetah_core::Sharder)) so every
//!   matching pair meets inside exactly one shard.
//!
//! The ingest-side queueing model ([`MasterIngestModel`], Figure 9 and the
//! §4.6 master-bottleneck analysis) lives in `cheetah-net` next to the
//! link models; it is re-exported here because the master is where callers
//! meet it.

// The ingest model moved to the layer that owns link modelling; the
// re-export keeps `cheetah_db::MasterIngestModel` working.
pub use cheetah_net::MasterIngestModel;

use crate::ops;
use crate::query::{DbQuery, QueryOutput};
use crate::value::Value;
use std::collections::BTreeMap;

/// Merge per-shard outputs of `q` into the global output, following the
/// per-operator semantics above. Every element of `outputs` must be the
/// variant `q` produces (they come from the same executor); a mismatch is
/// a bug in the caller, not a data error, and panics.
pub fn merge_shard_outputs(q: &DbQuery, outputs: Vec<QueryOutput>) -> QueryOutput {
    match q {
        // Count-sum family.
        DbQuery::FilterCount { .. } => QueryOutput::Count(
            outputs
                .into_iter()
                .map(|o| match o {
                    QueryOutput::Count(c) => c,
                    other => mismatch("Count", &other),
                })
                .sum(),
        ),
        DbQuery::Join { .. } => QueryOutput::JoinPairs(
            outputs
                .into_iter()
                .map(|o| match o {
                    QueryOutput::JoinPairs(p) => p,
                    other => mismatch("JoinPairs", &other),
                })
                .sum(),
        ),
        // Re-prune family.
        DbQuery::Distinct { .. } => {
            let mut vals: Vec<Value> = Vec::new();
            for o in outputs {
                match o {
                    QueryOutput::Values(v) => vals.extend(v),
                    other => mismatch("Values", &other),
                }
            }
            QueryOutput::values(vals)
        }
        DbQuery::TopN { n, .. } => {
            let partials: Vec<Vec<i64>> = outputs
                .into_iter()
                .map(|o| match o {
                    QueryOutput::TopValues(v) => v,
                    other => mismatch("TopValues", &other),
                })
                .collect();
            QueryOutput::top_values(ops::merge_topn(partials, *n))
        }
        DbQuery::Skyline { .. } => {
            let mut pts: Vec<Vec<i64>> = Vec::new();
            for o in outputs {
                match o {
                    QueryOutput::Points(p) => pts.extend(p),
                    other => mismatch("Points", &other),
                }
            }
            QueryOutput::points(ops::skyline_of(&pts))
        }
        // Key-union family.
        DbQuery::GroupByMax { .. } => {
            let mut merged: BTreeMap<Value, i64> = BTreeMap::new();
            for o in outputs {
                match o {
                    QueryOutput::KeyedInts(m) => {
                        for (k, v) in m {
                            merged.entry(k).and_modify(|x| *x = (*x).max(v)).or_insert(v);
                        }
                    }
                    other => mismatch("KeyedInts", &other),
                }
            }
            QueryOutput::KeyedInts(merged)
        }
        DbQuery::HavingSum { .. } => {
            // Key-aligned routing puts every row of a key on one shard, so
            // shard-local sums (and the threshold decision) are global.
            let mut merged: BTreeMap<Value, i64> = BTreeMap::new();
            for o in outputs {
                match o {
                    QueryOutput::KeyedInts(m) => merged.extend(m),
                    other => mismatch("KeyedInts", &other),
                }
            }
            QueryOutput::KeyedInts(merged)
        }
    }
}

fn mismatch(expected: &str, got: &QueryOutput) -> ! {
    panic!("shard output variant mismatch: expected {expected}, got {got:?}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{DbPredicate, IntCmp};

    fn filter_q() -> DbQuery {
        DbQuery::FilterCount { pred: DbPredicate::CmpInt { col: 0, op: IntCmp::Lt, lit: 1 } }
    }

    #[test]
    fn counts_and_join_pairs_sum() {
        let merged = merge_shard_outputs(
            &filter_q(),
            vec![QueryOutput::Count(3), QueryOutput::Count(0), QueryOutput::Count(4)],
        );
        assert_eq!(merged, QueryOutput::Count(7));
        let joined = merge_shard_outputs(
            &DbQuery::Join { left_key: 0, right_key: 0 },
            vec![QueryOutput::JoinPairs(5), QueryOutput::JoinPairs(2)],
        );
        assert_eq!(joined, QueryOutput::JoinPairs(7));
    }

    #[test]
    fn distinct_union_renormalizes() {
        let merged = merge_shard_outputs(
            &DbQuery::Distinct { col: 0 },
            vec![
                QueryOutput::values(vec![Value::Int(2), Value::Int(1)]),
                QueryOutput::values(vec![Value::Int(2), Value::Int(3)]),
            ],
        );
        assert_eq!(merged, QueryOutput::Values(vec![Value::Int(1), Value::Int(2), Value::Int(3)]));
    }

    #[test]
    fn topn_re_prunes_to_n() {
        let merged = merge_shard_outputs(
            &DbQuery::TopN { order_col: 0, n: 3 },
            vec![QueryOutput::top_values(vec![9, 7, 5]), QueryOutput::top_values(vec![8, 6])],
        );
        assert_eq!(merged, QueryOutput::TopValues(vec![9, 8, 7]));
    }

    #[test]
    fn skyline_re_prunes_cross_shard_domination() {
        // Shard 0's champion (3,3) dominates shard 1's survivors.
        let merged = merge_shard_outputs(
            &DbQuery::Skyline { cols: vec![0, 1] },
            vec![
                QueryOutput::points(vec![vec![3, 3]]),
                QueryOutput::points(vec![vec![1, 2], vec![2, 1]]),
            ],
        );
        assert_eq!(merged, QueryOutput::Points(vec![vec![3, 3]]));
    }

    #[test]
    fn groupby_key_union_takes_the_max() {
        let m1: BTreeMap<Value, i64> =
            [(Value::Int(1), 5), (Value::Int(2), 9)].into_iter().collect();
        let m2: BTreeMap<Value, i64> =
            [(Value::Int(1), 8), (Value::Int(3), 1)].into_iter().collect();
        let merged = merge_shard_outputs(
            &DbQuery::GroupByMax { key_col: 0, val_col: 1 },
            vec![QueryOutput::KeyedInts(m1), QueryOutput::KeyedInts(m2)],
        );
        let want: BTreeMap<Value, i64> =
            [(Value::Int(1), 8), (Value::Int(2), 9), (Value::Int(3), 1)].into_iter().collect();
        assert_eq!(merged, QueryOutput::KeyedInts(want));
    }

    #[test]
    fn having_unions_disjoint_key_sets() {
        let m1: BTreeMap<Value, i64> = [(Value::Int(1), 100)].into_iter().collect();
        let m2: BTreeMap<Value, i64> = [(Value::Int(2), 200)].into_iter().collect();
        let merged = merge_shard_outputs(
            &DbQuery::HavingSum { key_col: 0, val_col: 1, threshold: 50 },
            vec![QueryOutput::KeyedInts(m1), QueryOutput::KeyedInts(m2)],
        );
        let want: BTreeMap<Value, i64> =
            [(Value::Int(1), 100), (Value::Int(2), 200)].into_iter().collect();
        assert_eq!(merged, QueryOutput::KeyedInts(want));
    }

    #[test]
    fn empty_shard_list_yields_empty_output() {
        assert_eq!(merge_shard_outputs(&filter_q(), vec![]), QueryOutput::Count(0));
        assert_eq!(
            merge_shard_outputs(&DbQuery::Distinct { col: 0 }, vec![]),
            QueryOutput::Values(vec![])
        );
    }

    #[test]
    #[should_panic(expected = "variant mismatch")]
    fn variant_mismatch_is_a_loud_bug() {
        let _ = merge_shard_outputs(&filter_q(), vec![QueryOutput::JoinPairs(1)]);
    }

    #[test]
    fn ingest_model_reexport_still_works() {
        // PR compat: `cheetah_db::MasterIngestModel` predates the move of
        // the model into cheetah-net.
        let m = MasterIngestModel::default_rack();
        assert!(m.blocking_latency(1_000) > 0.0);
    }
}

//! Master-side models: ingest buffering (Figure 9) and completion from
//! pruned streams.
//!
//! §8.3: *"The increase is super-linear in the unpruned rate since the
//! master can handle each arriving entry immediately when almost all
//! entries are pruned. In contrast, when the pruning rate is low, the
//! entries buffer up at the master, causing an increase in the completion
//! time."* [`MasterIngestModel`] reproduces that mechanism: entries arrive
//! at the NIC rate, are serviced at a per-query rate, and the service rate
//! degrades as the backlog grows (allocation/GC pressure at scale).

use serde::{Deserialize, Serialize};

/// Queueing model of the master ingesting a pruned stream.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MasterIngestModel {
    /// Entry arrival rate at the master's NIC (entries/second) — the
    /// CWorker send rate times the unpruned fraction.
    pub arrival_rate: f64,
    /// Base service rate (entries/second) of the query's software
    /// completion operator — e.g. TOP N's heap handles millions/s while
    /// SKYLINE's dominance checks are far slower (§8.3).
    pub base_service_rate: f64,
    /// Backlog at which the effective service rate has halved (buffering/
    /// allocation pressure). Entries.
    pub backlog_halving: f64,
}

impl MasterIngestModel {
    /// Blocking latency (seconds) for the master to finish ingesting and
    /// processing `entries` entries.
    ///
    /// Simulated in coarse steps: while entries are arriving the master
    /// services at a backlog-degraded rate; after the last arrival it
    /// drains the remaining backlog.
    pub fn blocking_latency(&self, entries: u64) -> f64 {
        if entries == 0 {
            return 0.0;
        }
        let n = entries as f64;
        let arrive_time = n / self.arrival_rate;
        // Integrate in 100 steps over the arrival window.
        let steps = 100;
        let dt = arrive_time / steps as f64;
        let mut backlog = 0.0f64;
        let mut processed = 0.0f64;
        for _ in 0..steps {
            backlog += self.arrival_rate * dt;
            let rate = self.base_service_rate / (1.0 + backlog / self.backlog_halving);
            let served = (rate * dt).min(backlog);
            backlog -= served;
            processed += served;
        }
        let mut t = arrive_time;
        // Drain the backlog.
        let mut guard = 0;
        while processed < n - 1e-9 && guard < 1_000_000 {
            let rate = self.base_service_rate / (1.0 + backlog / self.backlog_halving);
            let dt = (backlog / rate).clamp(1e-9, 0.01);
            let served = (rate * dt).min(backlog);
            backlog -= served;
            processed += served;
            t += dt;
            guard += 1;
        }
        t
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model(service: f64) -> MasterIngestModel {
        MasterIngestModel {
            arrival_rate: 10_000_000.0,
            base_service_rate: service,
            backlog_halving: 2_000_000.0,
        }
    }

    #[test]
    fn zero_entries_zero_latency() {
        assert_eq!(model(1e6).blocking_latency(0), 0.0);
    }

    #[test]
    fn latency_grows_superlinearly_in_entries() {
        // Figure 9's key property: doubling the unpruned entries more than
        // doubles the blocking latency once buffering kicks in.
        let m = model(2_000_000.0);
        let t1 = m.blocking_latency(5_000_000);
        let t2 = m.blocking_latency(10_000_000);
        assert!(t2 > 2.0 * t1 * 1.05, "t1={t1}, t2={t2}");
    }

    #[test]
    fn fast_service_tracks_arrival() {
        // When the master can keep up, latency ≈ arrival time.
        let m = model(1e9);
        let t = m.blocking_latency(1_000_000);
        let arrive = 1_000_000.0 / m.arrival_rate;
        assert!((t - arrive).abs() < arrive * 0.2, "t={t}, arrive={arrive}");
    }

    #[test]
    fn slower_operators_take_longer() {
        // §8.3: SKYLINE's expensive software operator needs more pruning
        // than TOP N's heap for the same latency.
        let fast = model(5e6).blocking_latency(2_000_000);
        let slow = model(2e5).blocking_latency(2_000_000);
        assert!(slow > fast * 2.0);
    }
}

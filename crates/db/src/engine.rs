//! The execution engine: baseline ("Spark") path vs. Cheetah path.
//!
//! Both paths run the *same queries on the same data and produce identical
//! normalized output* — that equality is the pruning correctness contract
//! and is asserted all over the test-suite. What differs is **where the
//! work happens**:
//!
//! * **Baseline** ([`baseline`](crate::baseline)): workers compute partial
//!   results over their partitions (filtering, partial aggregation, local
//!   top-N/skyline…), send the compressed partials to the master, which
//!   merges. Worker compute dominates (§2.1: Spark is bottlenecked by
//!   server processing).
//! * **Cheetah** ([`executor`](crate::executor)): workers only *serialize*
//!   the queried columns into entry-per-packet streams (§7.1), the switch
//!   prunes at line rate, and the master completes the query on the
//!   survivors. The per-query specifics live in small
//!   [`PruningOperator`](cheetah_core::PruningOperator) impls under
//!   [`operators`](crate::operators); everything else is generic.
//!
//! Phase timings are measured on real work with `Instant`; transfer times
//! are modelled from byte counts and link rates by `cheetah-net`'s
//! [`ExecBreakdown`] (the repository has no 40G NICs).

use crate::executor::Tables;
use crate::operators::{
    DistinctOp, FilterOp, GroupByMaxOp, HavingSumOp, JoinOp, SkylineOp, TopNOp,
};
use crate::query::{DbQuery, QueryOutput};
use crate::table::{Partition, Table};
use cheetah_core::{
    BloomKind, DistinctConfig, EvictionPolicy, JoinMode, SkylinePolicy, TopNRandConfig,
};
use cheetah_switch::{ProgramStats, SwitchProfile};

// Byte accounting lives in the layer that owns link modelling; re-exported
// here because the engine's runs are where callers meet it.
pub use cheetah_net::{Encoded, ExecBackend, ExecBreakdown, ENTRY_WIRE_BYTES};

/// Result of the baseline path.
#[derive(Debug, Clone)]
pub struct SparkRun {
    /// Normalized query output.
    pub output: QueryOutput,
    /// Phase breakdown.
    pub breakdown: ExecBreakdown,
}

/// Result of the Cheetah path.
#[derive(Debug, Clone)]
pub struct CheetahRun {
    /// Normalized query output (must equal the baseline's).
    pub output: QueryOutput,
    /// Phase breakdown.
    pub breakdown: ExecBreakdown,
    /// Switch pruning statistics across the plan's passes.
    pub switch_stats: ProgramStats,
    /// Control-plane rules the plan installed.
    pub rules: usize,
}

/// Switch-side configuration knobs for the Cheetah path.
#[derive(Debug, Clone)]
pub struct CheetahTuning {
    /// DISTINCT matrix.
    pub distinct: DistinctConfig,
    /// Randomized TOP-N matrix.
    pub topn: TopNRandConfig,
    /// GROUP BY matrix (rows, cols).
    pub groupby_rows: usize,
    /// GROUP BY matrix columns.
    pub groupby_cols: usize,
    /// JOIN Bloom filter size in bits.
    pub join_m_bits: u64,
    /// JOIN filter kind.
    pub join_kind: BloomKind,
    /// JOIN pass structure. With [`JoinMode::SmallTableFirst`] the *left*
    /// table is treated as the small side: it streams once (unpruned,
    /// building its filter) and only the right table is pruned — one less
    /// pass and a lower false-positive rate (§4.3).
    pub join_mode: JoinMode,
    /// HAVING Count-Min counters per row.
    pub having_counters: usize,
    /// SKYLINE stored points.
    pub skyline_points: usize,
    /// SKYLINE projection policy.
    pub skyline_policy: SkylinePolicy,
    /// Seed for all hashes.
    pub seed: u64,
}

impl Default for CheetahTuning {
    fn default() -> Self {
        Self {
            distinct: DistinctConfig {
                rows: 4096,
                cols: 2,
                policy: EvictionPolicy::Lru,
                fingerprint: None,
                seed: 0xD,
            },
            topn: TopNRandConfig { rows: 4096, cols: 4, seed: 0x7 },
            groupby_rows: 4096,
            groupby_cols: 8,
            join_m_bits: 1 << 22,
            join_kind: BloomKind::Classic { h: 3 },
            join_mode: JoinMode::TwoPass,
            having_counters: 1024,
            skyline_points: 10,
            skyline_policy: SkylinePolicy::Sum,
            seed: 0xC43E7A,
        }
    }
}

/// A cluster: workers own partitions; one master; one switch in between.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Switch model used by the Cheetah path.
    pub profile: SwitchProfile,
    /// Compression factor applied to baseline transfers (§7.1: Spark
    /// compresses and packs entries; Cheetah cannot).
    pub baseline_compression: f64,
    /// Per-row software overhead of the *Spark* baseline, in nanoseconds,
    /// scaled per query class by [`spark_overhead_factor`]. Our operators are
    /// tight Rust loops; Spark's measured row rates are 10–100× slower
    /// (the paper's own Figure 5: 31.7M rows ≈ 8–10 s on five 2-core
    /// workers ⇒ ~1 µs/row for hash aggregation). Set to 0 to compare
    /// against the raw Rust engine instead of a Spark-like baseline.
    pub spark_row_overhead_ns: f64,
    /// Switch-side tuning.
    pub tuning: CheetahTuning,
    /// Which pruning backend the Cheetah path runs: the interpreted
    /// pipeline (default, the oracle) or the plan-time fused kernels of
    /// [`cheetah_core::CompiledProgram`]. Because the sharded, pooled and
    /// streamed paths all clone the cluster into their workers, setting
    /// this once routes every shard's entry loop through the chosen
    /// engine.
    pub backend: ExecBackend,
}

impl Default for Cluster {
    fn default() -> Self {
        Self {
            profile: SwitchProfile::tofino2(),
            baseline_compression: 0.5,
            spark_row_overhead_ns: 1_000.0,
            tuning: CheetahTuning::default(),
            backend: ExecBackend::Interpreted,
        }
    }
}

/// Relative per-row cost of Spark's software stack per query class, as a
/// fraction of [`Cluster::spark_row_overhead_ns`]. Whole-stage codegen
/// makes simple scans far cheaper per row than hash aggregation; dominance
/// checks are the most expensive (§8.3 makes the same ordering argument).
pub fn spark_overhead_factor(q: &DbQuery) -> f64 {
    match q {
        DbQuery::FilterCount { .. } => 0.08, // vectorized scan
        DbQuery::TopN { .. } => 0.3,         // branchy bounded heap
        DbQuery::Join { .. } => 0.8,         // shuffle + hash probe
        DbQuery::Distinct { .. } | DbQuery::HavingSum { .. } => 1.0, // hash aggregate
        DbQuery::GroupByMax { .. } => 1.0,
        DbQuery::Skyline { .. } => 1.5, // pairwise dominance
    }
}

impl Cluster {
    /// This cluster with the Cheetah path pinned to `backend`.
    pub fn with_backend(mut self, backend: ExecBackend) -> Self {
        self.backend = backend;
        self
    }

    // ------------------------------------------------------------------
    // Baseline path (measured operators live in `crate::baseline`)
    // ------------------------------------------------------------------

    /// Execute the query the way vanilla Spark would.
    pub fn run_baseline(&self, q: &DbQuery, left: &Table, right: Option<&Table>) -> SparkRun {
        let mut run = self.run_baseline_measured(q, left, right);
        // Charge the calibrated Spark software overhead to the busiest
        // worker (partitions are processed one task per worker).
        let max_rows = left.partitions().iter().map(Partition::rows).max().unwrap_or(0)
            + right
                .map(|r| r.partitions().iter().map(Partition::rows).max().unwrap_or(0))
                .unwrap_or(0);
        run.breakdown.worker_seconds +=
            max_rows as f64 * self.spark_row_overhead_ns * spark_overhead_factor(q) * 1e-9;
        run
    }

    // ------------------------------------------------------------------
    // Cheetah path
    // ------------------------------------------------------------------

    /// Execute the query through the switch-pruned path. Output is
    /// guaranteed equal to [`run_baseline`](Self::run_baseline)'s (up to
    /// the probabilistic fingerprint caveats documented per algorithm).
    ///
    /// Every query shape goes through the same generic executor
    /// ([`Cluster::execute`]); each arm below only picks the
    /// [`PruningOperator`](cheetah_core::PruningOperator) impl.
    ///
    /// **Deprecated**: prefer the serving plane's front door — build a
    /// `cheetah_serve::QueryRequest` and call `Session::run_blocking` /
    /// `Session::submit`. This entry point stays as the shim the
    /// serving contract gates verify bit-identity against.
    #[doc(hidden)]
    pub fn run_cheetah(
        &self,
        q: &DbQuery,
        left: &Table,
        right: Option<&Table>,
    ) -> cheetah_core::Result<CheetahRun> {
        let t = Tables { left, right };
        match q {
            DbQuery::FilterCount { pred } => self.execute(&FilterOp::new(pred), &t),
            DbQuery::Distinct { col } => self.execute(&DistinctOp::new(*col, &self.tuning), &t),
            DbQuery::Skyline { cols } => self.execute(&SkylineOp::new(cols, &self.tuning), &t),
            DbQuery::TopN { order_col, n } => {
                self.execute(&TopNOp::new(*order_col, *n, &self.tuning), &t)
            }
            DbQuery::GroupByMax { key_col, val_col } => {
                self.execute(&GroupByMaxOp::new(*key_col, *val_col, &self.tuning), &t)
            }
            DbQuery::Join { left_key, right_key } => {
                self.execute(&JoinOp::new(*left_key, *right_key, &self.tuning), &t)
            }
            DbQuery::HavingSum { key_col, val_col, threshold } => {
                self.execute(&HavingSumOp::new(*key_col, *val_col, *threshold, &self.tuning), &t)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{DbPredicate, IntCmp};
    use crate::testutil::test_table;

    #[test]
    fn overhead_factors_order_queries_sensibly() {
        let filter = spark_overhead_factor(&DbQuery::FilterCount {
            pred: DbPredicate::CmpInt { col: 0, op: IntCmp::Lt, lit: 1 },
        });
        let agg = spark_overhead_factor(&DbQuery::Distinct { col: 0 });
        let sky = spark_overhead_factor(&DbQuery::Skyline { cols: vec![0, 1] });
        assert!(filter < agg, "scans are cheaper per row than hash aggregation");
        assert!(agg <= sky, "dominance checks are the most expensive");
    }

    #[test]
    fn spark_overhead_calibration_is_applied() {
        let q = DbQuery::Distinct { col: 0 };
        let t = test_table(2_000, 2);
        let mut cluster = Cluster { spark_row_overhead_ns: 0.0, ..Cluster::default() };
        let raw = cluster.run_baseline(&q, &t, None);
        // An exaggerated 10 µs/row calibration: the 10 ms it adds to the
        // busiest worker dwarfs any scheduler noise from the rest of the
        // (thread-heavy) test suite running concurrently.
        cluster.spark_row_overhead_ns = 10_000.0;
        let calibrated = cluster.run_baseline(&q, &t, None);
        // 1000 rows per partition × 10 µs = 10 ms extra on the busiest worker.
        let delta = calibrated.breakdown.worker_seconds - raw.breakdown.worker_seconds;
        assert!(delta > 5e-3, "calibration missing: {delta}");
        // The Cheetah path is never calibrated — it measures real work.
        let chee = cluster.run_cheetah(&q, &t, None).unwrap();
        assert!(chee.breakdown.worker_seconds < calibrated.breakdown.worker_seconds);
    }
}

//! The execution engine: baseline ("Spark") path vs. Cheetah path.
//!
//! Both paths run the *same queries on the same data and produce identical
//! normalized output* — that equality is the pruning correctness contract
//! and is asserted all over the test-suite. What differs is **where the
//! work happens**:
//!
//! * **Baseline**: workers compute partial results over their partitions
//!   (filtering, partial aggregation, local top-N/skyline…), send the
//!   compressed partials to the master, which merges. Worker compute
//!   dominates (§2.1: Spark is bottlenecked by server processing).
//! * **Cheetah**: workers only *serialize* the queried columns into
//!   entry-per-packet streams (§7.1), the switch prunes at line rate, and
//!   the master completes the query on the survivors.
//!
//! Phase timings are measured on real work with `Instant`; transfer times
//! are modelled from byte counts and link rates (the repository has no
//! 40G NICs). `ENTRY_WIRE_BYTES` reproduces the paper's observed rate:
//! one entry per packet, ~10 M packets/s on a 10G link.

use crate::expr::DbPredicate;
use crate::ops;
use crate::query::{DbQuery, QueryOutput};
use crate::table::{Partition, Table};
use crate::value::{encode_ordered_i64, Value};
use cheetah_core::{
    planner, AtomSpec, BloomKind, BoolExpr, CmpOp, DistinctConfig, EvictionPolicy, ExternalMode,
    FilterConfig, GroupByConfig, HavingAgg, HavingConfig, JoinConfig, JoinMode, Predicate,
    QuerySpec, SkylineConfig, SkylinePolicy, TopNRandConfig,
};
use cheetah_switch::{ControlMsg, HashFn, ProgramStats, SwitchProfile, Verdict};
use std::collections::{HashMap, HashSet};
use std::time::Instant;

/// Wire size of one Cheetah entry-packet (Ethernet + IP + UDP + Cheetah
/// header + values). Chosen so a 10G link carries ~10 M entries/s, the
/// rate §7.1 reports.
pub const ENTRY_WIRE_BYTES: u64 = 125;

/// How many packet value slots an encoded entry may use.
const MAX_VALS: usize = 4;

/// One serialized entry: its id (partition, row) plus the queried values.
#[derive(Debug, Clone, Copy)]
pub struct Encoded {
    part: u32,
    row: u32,
    vals: [u64; MAX_VALS],
    n: u8,
}

impl Encoded {
    fn new(part: usize, row: usize, vals: &[u64]) -> Self {
        assert!(vals.len() <= MAX_VALS, "at most {MAX_VALS} packet values");
        let mut a = [0u64; MAX_VALS];
        a[..vals.len()].copy_from_slice(vals);
        Self { part: part as u32, row: row as u32, vals: a, n: vals.len() as u8 }
    }

    /// The value slots.
    pub fn values(&self) -> &[u64] {
        &self.vals[..self.n as usize]
    }

    /// Entry id as (partition, row).
    pub fn id(&self) -> (usize, usize) {
        (self.part as usize, self.row as usize)
    }
}

/// Phase timings and transfer volumes of one execution.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ExecBreakdown {
    /// Slowest worker's compute/serialize time (workers run in parallel).
    pub worker_seconds: f64,
    /// Master completion time.
    pub master_seconds: f64,
    /// Bytes the busiest worker puts on its link, across all passes.
    pub worker_wire_bytes: u64,
    /// Bytes arriving at the master's link.
    pub master_wire_bytes: u64,
    /// Entries delivered to the master.
    pub entries_to_master: u64,
    /// Passes over the data.
    pub passes: u8,
}

impl ExecBreakdown {
    /// Modelled transfer time on `link_gbps` links: the per-worker uplink
    /// and the master downlink stream concurrently, so the slower of the
    /// two bounds the transfer.
    pub fn network_seconds(&self, link_gbps: f64) -> f64 {
        let bits = self.worker_wire_bytes.max(self.master_wire_bytes) as f64 * 8.0;
        bits / (link_gbps * 1e9)
    }

    /// End-to-end completion: worker phase, then transfer, then master
    /// phase (conservative additive model — matches the stacked bars of
    /// Figure 8).
    pub fn completion_seconds(&self, link_gbps: f64) -> f64 {
        self.worker_seconds + self.network_seconds(link_gbps) + self.master_seconds
    }
}

/// Result of the baseline path.
#[derive(Debug, Clone)]
pub struct SparkRun {
    /// Normalized query output.
    pub output: QueryOutput,
    /// Phase breakdown.
    pub breakdown: ExecBreakdown,
}

/// Result of the Cheetah path.
#[derive(Debug, Clone)]
pub struct CheetahRun {
    /// Normalized query output (must equal the baseline's).
    pub output: QueryOutput,
    /// Phase breakdown.
    pub breakdown: ExecBreakdown,
    /// Switch pruning statistics (pass-2 stats for two-pass plans).
    pub switch_stats: ProgramStats,
    /// Control-plane rules the plan installed.
    pub rules: usize,
}

/// Switch-side configuration knobs for the Cheetah path.
#[derive(Debug, Clone)]
pub struct CheetahTuning {
    /// DISTINCT matrix.
    pub distinct: DistinctConfig,
    /// Randomized TOP-N matrix.
    pub topn: TopNRandConfig,
    /// GROUP BY matrix (rows, cols).
    pub groupby_rows: usize,
    /// GROUP BY matrix columns.
    pub groupby_cols: usize,
    /// JOIN Bloom filter size in bits.
    pub join_m_bits: u64,
    /// JOIN filter kind.
    pub join_kind: BloomKind,
    /// JOIN pass structure. With [`JoinMode::SmallTableFirst`] the *left*
    /// table is treated as the small side: it streams once (unpruned,
    /// building its filter) and only the right table is pruned — one less
    /// pass and a lower false-positive rate (§4.3).
    pub join_mode: JoinMode,
    /// HAVING Count-Min counters per row.
    pub having_counters: usize,
    /// SKYLINE stored points.
    pub skyline_points: usize,
    /// SKYLINE projection policy.
    pub skyline_policy: SkylinePolicy,
    /// Seed for all hashes.
    pub seed: u64,
}

impl Default for CheetahTuning {
    fn default() -> Self {
        Self {
            distinct: DistinctConfig {
                rows: 4096,
                cols: 2,
                policy: EvictionPolicy::Lru,
                fingerprint: None,
                seed: 0xD,
            },
            topn: TopNRandConfig { rows: 4096, cols: 4, seed: 0x7 },
            groupby_rows: 4096,
            groupby_cols: 8,
            join_m_bits: 1 << 22,
            join_kind: BloomKind::Classic { h: 3 },
            join_mode: JoinMode::TwoPass,
            having_counters: 1024,
            skyline_points: 10,
            skyline_policy: SkylinePolicy::Sum,
            seed: 0xC43E7A,
        }
    }
}

/// A cluster: workers own partitions; one master; one switch in between.
#[derive(Debug, Clone)]
pub struct Cluster {
    /// Switch model used by the Cheetah path.
    pub profile: SwitchProfile,
    /// Compression factor applied to baseline transfers (§7.1: Spark
    /// compresses and packs entries; Cheetah cannot).
    pub baseline_compression: f64,
    /// Per-row software overhead of the *Spark* baseline, in nanoseconds,
    /// scaled per query class by [`spark_overhead_factor`]. Our operators are
    /// tight Rust loops; Spark's measured row rates are 10–100× slower
    /// (the paper's own Figure 5: 31.7M rows ≈ 8–10 s on five 2-core
    /// workers ⇒ ~1 µs/row for hash aggregation). Set to 0 to compare
    /// against the raw Rust engine instead of a Spark-like baseline.
    pub spark_row_overhead_ns: f64,
    /// Switch-side tuning.
    pub tuning: CheetahTuning,
}

impl Default for Cluster {
    fn default() -> Self {
        Self {
            profile: SwitchProfile::tofino2(),
            baseline_compression: 0.5,
            spark_row_overhead_ns: 1_000.0,
            tuning: CheetahTuning::default(),
        }
    }
}

/// Relative per-row cost of Spark's software stack per query class, as a
/// fraction of [`Cluster::spark_row_overhead_ns`]. Whole-stage codegen
/// makes simple scans far cheaper per row than hash aggregation; dominance
/// checks are the most expensive (§8.3 makes the same ordering argument).
pub fn spark_overhead_factor(q: &DbQuery) -> f64 {
    match q {
        DbQuery::FilterCount { .. } => 0.08, // vectorized scan
        DbQuery::TopN { .. } => 0.3,         // branchy bounded heap
        DbQuery::Join { .. } => 0.8,         // shuffle + hash probe
        DbQuery::Distinct { .. } | DbQuery::HavingSum { .. } => 1.0, // hash aggregate
        DbQuery::GroupByMax { .. } => 1.0,
        DbQuery::Skyline { .. } => 1.5, // pairwise dominance
    }
}

/// Run partition tasks in parallel (one thread per partition, like Spark's
/// task-per-partition model) and report the slowest task's duration.
fn parallel_partials<T: Send>(
    parts: &[Partition],
    f: impl Fn(&Partition) -> T + Sync,
) -> (Vec<T>, f64) {
    let results: Vec<(T, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|p| {
                s.spawn(|| {
                    let t0 = Instant::now();
                    let out = f(p);
                    (out, t0.elapsed().as_secs_f64())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let max = results.iter().map(|(_, d)| *d).fold(0.0f64, f64::max);
    (results.into_iter().map(|(t, _)| t).collect(), max)
}

/// Clamped order-preserving 32-bit encoding for aggregate/order columns
/// (register cells hold 32-bit values; saturation only ever *reduces*
/// pruning, never correctness — saturated values tie and ties forward).
fn encode_i64_32(v: i64) -> u64 {
    (v.saturating_add(1 << 31).clamp(0, u32::MAX as i64)) as u64
}

impl Cluster {
    /// Key encoding: ints map order-preservingly; strings are 63-bit
    /// fingerprints (the CWorker cannot ship variable-length strings in a
    /// fixed header — §5 Example #8).
    fn encode_key(&self, v: &Value) -> u64 {
        match v {
            Value::Int(x) => encode_ordered_i64(*x),
            Value::Str(s) => HashFn::from_seed(self.tuning.seed).hash_bytes(s.as_bytes()) >> 1,
        }
    }

    // ------------------------------------------------------------------
    // Baseline path
    // ------------------------------------------------------------------

    /// Execute the query the way vanilla Spark would.
    pub fn run_baseline(&self, q: &DbQuery, left: &Table, right: Option<&Table>) -> SparkRun {
        let mut run = self.run_baseline_measured(q, left, right);
        // Charge the calibrated Spark software overhead to the busiest
        // worker (partitions are processed one task per worker).
        let max_rows = left.partitions().iter().map(Partition::rows).max().unwrap_or(0)
            + right
                .map(|r| r.partitions().iter().map(Partition::rows).max().unwrap_or(0))
                .unwrap_or(0);
        run.breakdown.worker_seconds +=
            max_rows as f64 * self.spark_row_overhead_ns * spark_overhead_factor(q) * 1e-9;
        run
    }

    /// The measured engine run without the Spark-overhead calibration —
    /// what a native Rust engine would cost.
    pub fn run_baseline_measured(
        &self,
        q: &DbQuery,
        left: &Table,
        right: Option<&Table>,
    ) -> SparkRun {
        match q {
            DbQuery::FilterCount { pred } => {
                let (partials, wt) =
                    parallel_partials(left.partitions(), |p| ops::partial_filter_count(pred, p));
                let t0 = Instant::now();
                let total: u64 = partials.iter().sum();
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(
                    QueryOutput::Count(total),
                    wt,
                    mt,
                    partials.len() as u64 * 8,
                    partials.len() as u64,
                )
            }
            DbQuery::Distinct { col } => {
                let (partials, wt) =
                    parallel_partials(left.partitions(), |p| ops::partial_distinct(*col, p));
                let bytes: u64 =
                    partials.iter().flat_map(|s| s.iter().map(Value::wire_bytes)).sum();
                let entries: u64 = partials.iter().map(|s| s.len() as u64).sum();
                let t0 = Instant::now();
                let mut all: Vec<Value> = Vec::new();
                for s in partials {
                    all.extend(s);
                }
                let out = QueryOutput::values(all);
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(out, wt, mt, bytes, entries)
            }
            DbQuery::Skyline { cols } => {
                let (partials, wt) =
                    parallel_partials(left.partitions(), |p| ops::partial_skyline(cols, p));
                let entries: u64 = partials.iter().map(|s| s.len() as u64).sum();
                let bytes = entries * 8 * cols.len() as u64;
                let t0 = Instant::now();
                let all: Vec<Vec<i64>> = partials.into_iter().flatten().collect();
                let out = QueryOutput::points(ops::skyline_of(&all));
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(out, wt, mt, bytes, entries)
            }
            DbQuery::TopN { order_col, n } => {
                let (partials, wt) =
                    parallel_partials(left.partitions(), |p| ops::partial_topn(*order_col, *n, p));
                let entries: u64 = partials.iter().map(|s| s.len() as u64).sum();
                let bytes = entries * 8;
                let t0 = Instant::now();
                let out = QueryOutput::top_values(ops::merge_topn(partials, *n));
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(out, wt, mt, bytes, entries)
            }
            DbQuery::GroupByMax { key_col, val_col } => {
                let (partials, wt) = parallel_partials(left.partitions(), |p| {
                    ops::partial_groupby_max(*key_col, *val_col, p)
                });
                let entries: u64 = partials.iter().map(|m| m.len() as u64).sum();
                let bytes: u64 =
                    partials.iter().flat_map(|m| m.keys().map(|k| k.wire_bytes() + 8)).sum();
                let t0 = Instant::now();
                let merged = ops::merge_groupby_max(partials);
                let out = QueryOutput::KeyedInts(merged.into_iter().collect());
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(out, wt, mt, bytes, entries)
            }
            DbQuery::Join { left_key, right_key } => {
                let right = right.expect("join needs a right table");
                // Late-materialization style: workers ship the key columns;
                // the master builds and probes.
                let (lk, wt1) =
                    parallel_partials(left.partitions(), |p| ops::extract_keys(*left_key, p));
                let (rk, wt2) =
                    parallel_partials(right.partitions(), |p| ops::extract_keys(*right_key, p));
                let lkeys: Vec<Value> = lk.into_iter().flatten().collect();
                let rkeys: Vec<Value> = rk.into_iter().flatten().collect();
                let bytes: u64 = lkeys.iter().chain(&rkeys).map(Value::wire_bytes).sum();
                let entries = (lkeys.len() + rkeys.len()) as u64;
                let t0 = Instant::now();
                let pairs = ops::hash_join_pairs(&lkeys, &rkeys);
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(QueryOutput::JoinPairs(pairs), wt1 + wt2, mt, bytes, entries)
            }
            DbQuery::HavingSum { key_col, val_col, threshold } => {
                let (partials, wt) = parallel_partials(left.partitions(), |p| {
                    ops::partial_sum_by_key(*key_col, *val_col, p)
                });
                let entries: u64 = partials.iter().map(|m| m.len() as u64).sum();
                let bytes: u64 =
                    partials.iter().flat_map(|m| m.keys().map(|k| k.wire_bytes() + 8)).sum();
                let t0 = Instant::now();
                let sums = ops::merge_sums(partials);
                let out = QueryOutput::KeyedInts(
                    sums.into_iter().filter(|(_, s)| s > threshold).collect(),
                );
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(out, wt, mt, bytes, entries)
            }
        }
    }

    fn baseline_run(
        &self,
        output: QueryOutput,
        worker_seconds: f64,
        master_seconds: f64,
        raw_bytes: u64,
        entries: u64,
    ) -> SparkRun {
        let compressed = (raw_bytes as f64 * self.baseline_compression) as u64;
        SparkRun {
            output,
            breakdown: ExecBreakdown {
                worker_seconds,
                master_seconds,
                // All partials converge on the master's link, which
                // therefore dominates any single worker's uplink; the
                // network model takes the max of the two.
                worker_wire_bytes: 0,
                master_wire_bytes: compressed,
                entries_to_master: entries,
                passes: 1,
            },
        }
    }

    // ------------------------------------------------------------------
    // Cheetah path
    // ------------------------------------------------------------------

    /// Execute the query through the switch-pruned path. Output is
    /// guaranteed equal to [`run_baseline`](Self::run_baseline)'s (up to
    /// the probabilistic fingerprint caveats documented per algorithm).
    pub fn run_cheetah(
        &self,
        q: &DbQuery,
        left: &Table,
        right: Option<&Table>,
    ) -> cheetah_core::Result<CheetahRun> {
        match q {
            DbQuery::FilterCount { pred } => self.cheetah_filter(pred, left),
            DbQuery::Distinct { col } => self.cheetah_distinct(*col, left),
            DbQuery::Skyline { cols } => self.cheetah_skyline(cols, left),
            DbQuery::TopN { order_col, n } => self.cheetah_topn(*order_col, *n, left),
            DbQuery::GroupByMax { key_col, val_col } => {
                self.cheetah_groupby(*key_col, *val_col, left)
            }
            DbQuery::Join { left_key, right_key } => self.cheetah_join(
                *left_key,
                *right_key,
                left,
                right.expect("join needs a right table"),
            ),
            DbQuery::HavingSum { key_col, val_col, threshold } => {
                self.cheetah_having(*key_col, *val_col, *threshold, left)
            }
        }
    }

    /// Serialize a table through an encoding closure, in parallel workers.
    fn serialize<F>(&self, table: &Table, encode: F) -> (Vec<Vec<Encoded>>, f64)
    where
        F: Fn(&Partition, usize) -> Vec<u64> + Sync,
    {
        let parts = table.partitions();
        let indexed: Vec<(usize, &Partition)> = parts.iter().enumerate().collect();
        let results: Vec<(Vec<Encoded>, f64)> = std::thread::scope(|s| {
            let handles: Vec<_> = indexed
                .iter()
                .map(|(pi, p)| {
                    let encode = &encode;
                    let pi = *pi;
                    s.spawn(move || {
                        let t0 = Instant::now();
                        let mut out = Vec::with_capacity(p.rows());
                        for r in 0..p.rows() {
                            out.push(Encoded::new(pi, r, &encode(p, r)));
                        }
                        (out, t0.elapsed().as_secs_f64())
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
        });
        let max = results.iter().map(|(_, d)| *d).fold(0.0f64, f64::max);
        (results.into_iter().map(|(v, _)| v).collect(), max)
    }

    /// Feed encoded streams through a single-program plan, returning the
    /// survivors.
    fn prune(
        plan: &mut planner::Plan,
        streams: &[Vec<Encoded>],
    ) -> cheetah_core::Result<Vec<Encoded>> {
        let mut survivors = Vec::new();
        for stream in streams {
            for e in stream {
                if plan.pipeline.process(0, e.values())? == Verdict::Forward {
                    survivors.push(*e);
                }
            }
        }
        Ok(survivors)
    }

    // One parameter per measured phase; bundling them into a struct would
    // just move the argument list one call up.
    #[allow(clippy::too_many_arguments)]
    fn cheetah_result(
        &self,
        output: QueryOutput,
        worker_seconds: f64,
        master_seconds: f64,
        streams: &[Vec<Encoded>],
        survivors: u64,
        passes: u8,
        stats: ProgramStats,
        rules: usize,
    ) -> CheetahRun {
        let max_worker_entries = streams.iter().map(|s| s.len() as u64).max().unwrap_or(0);
        CheetahRun {
            output,
            breakdown: ExecBreakdown {
                worker_seconds,
                master_seconds,
                worker_wire_bytes: max_worker_entries * ENTRY_WIRE_BYTES * passes as u64,
                master_wire_bytes: survivors * ENTRY_WIRE_BYTES,
                entries_to_master: survivors,
                passes,
            },
            switch_stats: stats,
            rules,
        }
    }

    fn cheetah_filter(
        &self,
        pred: &DbPredicate,
        table: &Table,
    ) -> cheetah_core::Result<CheetahRun> {
        let (fcfg, slots) = filter_config_of(pred, self.tuning.seed);
        let mut plan = planner::plan(&QuerySpec::Filter(fcfg), self.profile.clone())?;
        let (streams, wt) = self.serialize(table, |p, r| {
            slots
                .iter()
                .map(|&c| encode_ordered_i64(p.column(c).as_int().expect("int filter col")[r]))
                .collect()
        });
        let survivors = Self::prune(&mut plan, &streams)?;
        // Master: fetch survivors, evaluate the FULL predicate (including
        // atoms the switch replaced by tautologies), count.
        let t0 = Instant::now();
        let mut count = 0u64;
        for e in &survivors {
            let (pi, r) = e.id();
            if ops::eval_predicate(pred, &table.partitions()[pi], r) {
                count += 1;
            }
        }
        let mt = t0.elapsed().as_secs_f64();
        let stats = plan.pipeline.stats(plan.program);
        Ok(self.cheetah_result(
            QueryOutput::Count(count),
            wt,
            mt,
            &streams,
            survivors.len() as u64,
            1,
            stats,
            plan.usage.rules,
        ))
    }

    fn cheetah_distinct(&self, col: usize, table: &Table) -> cheetah_core::Result<CheetahRun> {
        let mut plan =
            planner::plan(&QuerySpec::Distinct(self.tuning.distinct), self.profile.clone())?;
        let (streams, wt) =
            self.serialize(table, |p, r| vec![self.encode_key(&p.column(col).get(r))]);
        let survivors = Self::prune(&mut plan, &streams)?;
        let t0 = Instant::now();
        let vals: Vec<Value> = survivors
            .iter()
            .map(|e| {
                let (pi, r) = e.id();
                table.partitions()[pi].column(col).get(r)
            })
            .collect();
        let out = QueryOutput::values(vals);
        let mt = t0.elapsed().as_secs_f64();
        let stats = plan.pipeline.stats(plan.program);
        Ok(self.cheetah_result(
            out,
            wt,
            mt,
            &streams,
            survivors.len() as u64,
            1,
            stats,
            plan.usage.rules,
        ))
    }

    fn cheetah_topn(
        &self,
        col: usize,
        n: usize,
        table: &Table,
    ) -> cheetah_core::Result<CheetahRun> {
        let mut plan = planner::plan(&QuerySpec::TopNRand(self.tuning.topn), self.profile.clone())?;
        let (streams, wt) = self.serialize(table, |p, r| {
            vec![encode_i64_32(p.column(col).as_int().expect("int order col")[r])]
        });
        let survivors = Self::prune(&mut plan, &streams)?;
        let t0 = Instant::now();
        let vals: Vec<i64> = survivors
            .iter()
            .map(|e| {
                let (pi, r) = e.id();
                table.partitions()[pi].column(col).as_int().expect("int order col")[r]
            })
            .collect();
        let out = QueryOutput::top_values(ops::merge_topn(vec![vals], n));
        let mt = t0.elapsed().as_secs_f64();
        let stats = plan.pipeline.stats(plan.program);
        Ok(self.cheetah_result(
            out,
            wt,
            mt,
            &streams,
            survivors.len() as u64,
            1,
            stats,
            plan.usage.rules,
        ))
    }

    fn cheetah_groupby(
        &self,
        key_col: usize,
        val_col: usize,
        table: &Table,
    ) -> cheetah_core::Result<CheetahRun> {
        let spec = QuerySpec::GroupBy(GroupByConfig {
            rows: self.tuning.groupby_rows,
            cols: self.tuning.groupby_cols,
            agg: cheetah_core::AggKind::Max,
            key_bits: 31,
            seed: self.tuning.seed,
        });
        let mut plan = planner::plan(&spec, self.profile.clone())?;
        let (streams, wt) = self.serialize(table, |p, r| {
            vec![
                self.encode_key(&p.column(key_col).get(r)),
                encode_i64_32(p.column(val_col).as_int().expect("int agg col")[r]),
            ]
        });
        let survivors = Self::prune(&mut plan, &streams)?;
        let t0 = Instant::now();
        let mut best: HashMap<Value, i64> = HashMap::new();
        for e in &survivors {
            let (pi, r) = e.id();
            let p = &table.partitions()[pi];
            let k = p.column(key_col).get(r);
            let v = p.column(val_col).as_int().expect("int agg col")[r];
            best.entry(k).and_modify(|m| *m = (*m).max(v)).or_insert(v);
        }
        let out = QueryOutput::KeyedInts(best.into_iter().collect());
        let mt = t0.elapsed().as_secs_f64();
        let stats = plan.pipeline.stats(plan.program);
        Ok(self.cheetah_result(
            out,
            wt,
            mt,
            &streams,
            survivors.len() as u64,
            1,
            stats,
            plan.usage.rules,
        ))
    }

    fn cheetah_skyline(&self, cols: &[usize], table: &Table) -> cheetah_core::Result<CheetahRun> {
        let spec = QuerySpec::Skyline(SkylineConfig {
            dims: cols.len(),
            points: self.tuning.skyline_points,
            policy: self.tuning.skyline_policy,
            packed: true,
        });
        let mut plan = planner::plan(&spec, self.profile.clone())?;
        let (streams, wt) = self.serialize(table, |p, r| {
            cols.iter()
                .map(|&c| encode_i64_32(p.column(c).as_int().expect("int skyline col")[r]))
                .collect()
        });
        let survivors = Self::prune(&mut plan, &streams)?;
        let t0 = Instant::now();
        let pts: Vec<Vec<i64>> = survivors
            .iter()
            .map(|e| {
                let (pi, r) = e.id();
                let p = &table.partitions()[pi];
                cols.iter().map(|&c| p.column(c).as_int().expect("int skyline col")[r]).collect()
            })
            .collect();
        let out = QueryOutput::points(ops::skyline_of(&pts));
        let mt = t0.elapsed().as_secs_f64();
        let stats = plan.pipeline.stats(plan.program);
        Ok(self.cheetah_result(
            out,
            wt,
            mt,
            &streams,
            survivors.len() as u64,
            1,
            stats,
            plan.usage.rules,
        ))
    }

    fn cheetah_join(
        &self,
        left_key: usize,
        right_key: usize,
        left: &Table,
        right: &Table,
    ) -> cheetah_core::Result<CheetahRun> {
        let mode = self.tuning.join_mode;
        let spec = QuerySpec::Join(JoinConfig {
            m_bits: self.tuning.join_m_bits,
            kind: self.tuning.join_kind,
            mode,
            fid_a: 0,
            fid_b: 1,
            seed: self.tuning.seed,
        });
        let mut plan = planner::plan(&spec, self.profile.clone())?;
        let (lstreams, wt1) =
            self.serialize(left, |p, r| vec![self.encode_key(&p.column(left_key).get(r))]);
        let (rstreams, wt2) =
            self.serialize(right, |p, r| vec![self.encode_key(&p.column(right_key).get(r))]);
        let mut surv_l: Vec<Encoded> = Vec::new();
        let mut surv_r: Vec<Encoded> = Vec::new();
        match mode {
            JoinMode::TwoPass => {
                // Pass 1: build filters (stream consumed at the switch).
                for e in lstreams.iter().flatten() {
                    plan.pipeline.process(0, e.values())?;
                }
                for e in rstreams.iter().flatten() {
                    plan.pipeline.process(1, e.values())?;
                }
                plan.pipeline.control(plan.program, &ControlMsg::SetPhase(2))?;
                // Pass 2: prune both sides.
                for e in lstreams.iter().flatten() {
                    if plan.pipeline.process(0, e.values())? == Verdict::Forward {
                        surv_l.push(*e);
                    }
                }
                for e in rstreams.iter().flatten() {
                    if plan.pipeline.process(1, e.values())? == Verdict::Forward {
                        surv_r.push(*e);
                    }
                }
            }
            JoinMode::SmallTableFirst => {
                // The small (left) side streams once: unpruned, building
                // its filter on the way through.
                for e in lstreams.iter().flatten() {
                    if plan.pipeline.process(0, e.values())? == Verdict::Forward {
                        surv_l.push(*e);
                    }
                }
                plan.pipeline.control(plan.program, &ControlMsg::SetPhase(2))?;
                // The large (right) side is pruned against the filter.
                for e in rstreams.iter().flatten() {
                    if plan.pipeline.process(1, e.values())? == Verdict::Forward {
                        surv_r.push(*e);
                    }
                }
            }
        }
        // Master: exact hash join on the survivors' true key values —
        // Bloom false positives contribute no pairs.
        let t0 = Instant::now();
        let lkeys: Vec<Value> = surv_l
            .iter()
            .map(|e| {
                let (pi, r) = e.id();
                left.partitions()[pi].column(left_key).get(r)
            })
            .collect();
        let rkeys: Vec<Value> = surv_r
            .iter()
            .map(|e| {
                let (pi, r) = e.id();
                right.partitions()[pi].column(right_key).get(r)
            })
            .collect();
        let pairs = ops::hash_join_pairs(&lkeys, &rkeys);
        let mt = t0.elapsed().as_secs_f64();
        let stats = plan.pipeline.stats(plan.program);
        let survivors = (surv_l.len() + surv_r.len()) as u64;
        let all_streams: Vec<Vec<Encoded>> = lstreams.into_iter().chain(rstreams).collect();
        let passes = match mode {
            JoinMode::TwoPass => 2,
            JoinMode::SmallTableFirst => 1, // each table streams exactly once
        };
        Ok(self.cheetah_result(
            QueryOutput::JoinPairs(pairs),
            wt1 + wt2,
            mt,
            &all_streams,
            survivors,
            passes,
            stats,
            plan.usage.rules,
        ))
    }

    fn cheetah_having(
        &self,
        key_col: usize,
        val_col: usize,
        threshold: i64,
        table: &Table,
    ) -> cheetah_core::Result<CheetahRun> {
        planner::validate_having_direction(false)?;
        let spec = QuerySpec::Having(HavingConfig {
            cm_rows: 3,
            cm_counters: self.tuning.having_counters,
            threshold: threshold.max(0) as u64,
            agg: HavingAgg::Sum,
            dedup_rows: 1024,
            dedup_cols: 2,
            seed: self.tuning.seed,
        });
        let mut plan = planner::plan(&spec, self.profile.clone())?;
        let (streams, wt1) = self.serialize(table, |p, r| {
            vec![
                self.encode_key(&p.column(key_col).get(r)),
                p.column(val_col).as_int().expect("int sum col")[r].max(0) as u64,
            ]
        });
        // Pass 1: sketch + candidate announcements.
        let candidates_enc: HashSet<u64> = {
            let mut c = HashSet::new();
            for e in streams.iter().flatten() {
                if plan.pipeline.process(0, e.values())? == Verdict::Forward {
                    c.insert(e.values()[0]);
                }
            }
            c
        };
        // Pass 2 (partial): workers re-stream only the requested keys; the
        // master aggregates exactly by true key value.
        let t1 = Instant::now();
        let pass2: Vec<Vec<Encoded>> = streams
            .iter()
            .map(|s| {
                s.iter().filter(|e| candidates_enc.contains(&e.values()[0])).copied().collect()
            })
            .collect();
        let wt2 = t1.elapsed().as_secs_f64();
        let t0 = Instant::now();
        let mut sums: HashMap<Value, i64> = HashMap::new();
        for e in pass2.iter().flatten() {
            let (pi, r) = e.id();
            let p = &table.partitions()[pi];
            let k = p.column(key_col).get(r);
            *sums.entry(k).or_insert(0) += p.column(val_col).as_int().expect("int sum col")[r];
        }
        let out =
            QueryOutput::KeyedInts(sums.into_iter().filter(|(_, s)| *s > threshold).collect());
        let mt = t0.elapsed().as_secs_f64();
        let stats = plan.pipeline.stats(plan.program);
        let survivors: u64 = pass2.iter().map(|s| s.len() as u64).sum();
        Ok(self.cheetah_result(out, wt1 + wt2, mt, &streams, survivors, 2, stats, plan.usage.rules))
    }
}

/// Compile a [`DbPredicate`] into the switch filter configuration plus the
/// packet slot layout: the unique int columns it references, in ascending
/// order, become packet values `0..k`. LIKE atoms become external atoms
/// (tautology-substituted; the master re-checks them on the survivors).
pub fn filter_config_of(pred: &DbPredicate, _seed: u64) -> (FilterConfig, Vec<usize>) {
    // Slot layout: unique int columns in ascending order.
    let mut int_cols: Vec<usize> = Vec::new();
    collect_int_cols(pred, &mut int_cols);
    int_cols.sort_unstable();
    int_cols.dedup();
    let slot_of = |col: usize| int_cols.iter().position(|&c| c == col).expect("mapped col");
    let mut atoms: Vec<AtomSpec> = Vec::new();
    let expr = lower_pred(pred, &mut atoms, &slot_of);
    (FilterConfig { atoms, expr, external_mode: ExternalMode::Tautology }, int_cols)
}

fn collect_int_cols(pred: &DbPredicate, out: &mut Vec<usize>) {
    match pred {
        DbPredicate::CmpInt { col, .. } => out.push(*col),
        DbPredicate::Like { .. } => {}
        DbPredicate::And(xs) | DbPredicate::Or(xs) => {
            for x in xs {
                collect_int_cols(x, out);
            }
        }
    }
}

fn lower_pred(
    pred: &DbPredicate,
    atoms: &mut Vec<AtomSpec>,
    slot_of: &impl Fn(usize) -> usize,
) -> BoolExpr {
    match pred {
        DbPredicate::CmpInt { col, op, lit } => {
            let sw_op = match op {
                crate::expr::IntCmp::Gt => CmpOp::Gt,
                crate::expr::IntCmp::Ge => CmpOp::Ge,
                crate::expr::IntCmp::Lt => CmpOp::Lt,
                crate::expr::IntCmp::Le => CmpOp::Le,
                crate::expr::IntCmp::Eq => CmpOp::Eq,
                crate::expr::IntCmp::Ne => CmpOp::Ne,
            };
            atoms.push(AtomSpec::Switch(Predicate {
                col: slot_of(*col),
                op: sw_op,
                constant: encode_ordered_i64(*lit),
            }));
            BoolExpr::Atom(atoms.len() - 1)
        }
        DbPredicate::Like { col, .. } => {
            atoms.push(AtomSpec::External { name: format!("LIKE on column {col}") });
            BoolExpr::Atom(atoms.len() - 1)
        }
        DbPredicate::And(xs) => {
            BoolExpr::And(xs.iter().map(|x| lower_pred(x, atoms, slot_of)).collect())
        }
        DbPredicate::Or(xs) => {
            BoolExpr::Or(xs.iter().map(|x| lower_pred(x, atoms, slot_of)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{IntCmp, LikePattern};
    use crate::table::TableBuilder;
    use crate::value::DataType;

    /// A small deterministic table: key strings, two int columns.
    fn test_table(rows: usize, partitions: usize) -> Table {
        let mut b = TableBuilder::new(
            "t",
            vec![
                ("agent".into(), DataType::Str),
                ("revenue".into(), DataType::Int),
                ("duration".into(), DataType::Int),
            ],
            rows.div_ceil(partitions),
        );
        let mut x: u64 = 42;
        for _ in 0..rows {
            x = cheetah_switch::hash::mix64(x);
            let agent = format!("agent-{}", x % 50);
            x = cheetah_switch::hash::mix64(x);
            let revenue = (x % 10_000) as i64;
            x = cheetah_switch::hash::mix64(x);
            let duration = (x % 100) as i64;
            b.push_row(vec![Value::Str(agent), Value::Int(revenue), Value::Int(duration)]);
        }
        b.build()
    }

    fn all_queries() -> Vec<DbQuery> {
        vec![
            DbQuery::FilterCount { pred: DbPredicate::CmpInt { col: 2, op: IntCmp::Lt, lit: 10 } },
            DbQuery::Distinct { col: 0 },
            DbQuery::TopN { order_col: 1, n: 25 },
            DbQuery::GroupByMax { key_col: 0, val_col: 1 },
            DbQuery::Skyline { cols: vec![1, 2] },
            DbQuery::HavingSum { key_col: 0, val_col: 1, threshold: 50_000 },
        ]
    }

    #[test]
    fn cheetah_output_equals_baseline_for_every_query() {
        // THE correctness contract: Q(A_Q(D)) = Q(D).
        let cluster = Cluster::default();
        let t = test_table(5_000, 4);
        for q in all_queries() {
            let base = cluster.run_baseline(&q, &t, None);
            let chee = cluster.run_cheetah(&q, &t, None).unwrap();
            assert_eq!(base.output, chee.output, "mismatch for {}", q.kind());
        }
    }

    #[test]
    fn join_outputs_match() {
        let cluster = Cluster::default();
        let l = test_table(3_000, 3);
        let r = test_table(2_000, 2);
        let q = DbQuery::Join { left_key: 0, right_key: 0 };
        let base = cluster.run_baseline(&q, &l, Some(&r));
        let chee = cluster.run_cheetah(&q, &l, Some(&r)).unwrap();
        assert_eq!(base.output, chee.output);
        assert!(matches!(base.output, QueryOutput::JoinPairs(p) if p > 0));
    }

    #[test]
    fn small_table_join_matches_two_pass() {
        let mut cluster = Cluster::default();
        let small = test_table(500, 2);
        let large = test_table(5_000, 4);
        let q = DbQuery::Join { left_key: 0, right_key: 0 };
        let base = cluster.run_baseline(&q, &small, Some(&large));
        let two_pass = cluster.run_cheetah(&q, &small, Some(&large)).unwrap();
        cluster.tuning.join_mode = cheetah_core::JoinMode::SmallTableFirst;
        let small_first = cluster.run_cheetah(&q, &small, Some(&large)).unwrap();
        assert_eq!(base.output, two_pass.output);
        assert_eq!(base.output, small_first.output);
        // The optimization halves the wire passes.
        assert_eq!(two_pass.breakdown.passes, 2);
        assert_eq!(small_first.breakdown.passes, 1);
        assert!(small_first.breakdown.worker_wire_bytes < two_pass.breakdown.worker_wire_bytes);
    }

    #[test]
    fn spark_overhead_calibration_is_applied() {
        let q = DbQuery::Distinct { col: 0 };
        let t = test_table(2_000, 2);
        let mut cluster = Cluster { spark_row_overhead_ns: 0.0, ..Cluster::default() };
        let raw = cluster.run_baseline(&q, &t, None);
        cluster.spark_row_overhead_ns = 1_000.0;
        let calibrated = cluster.run_baseline(&q, &t, None);
        // 1000 rows per partition × 1 µs = 1 ms extra on the busiest worker.
        let delta = calibrated.breakdown.worker_seconds - raw.breakdown.worker_seconds;
        assert!(delta > 0.5e-3, "calibration missing: {delta}");
        // The Cheetah path is never calibrated — it measures real work.
        let chee = cluster.run_cheetah(&q, &t, None).unwrap();
        assert!(chee.breakdown.worker_seconds < calibrated.breakdown.worker_seconds);
    }

    #[test]
    fn overhead_factors_order_queries_sensibly() {
        let filter = spark_overhead_factor(&DbQuery::FilterCount {
            pred: DbPredicate::CmpInt { col: 0, op: IntCmp::Lt, lit: 1 },
        });
        let agg = spark_overhead_factor(&DbQuery::Distinct { col: 0 });
        let sky = spark_overhead_factor(&DbQuery::Skyline { cols: vec![0, 1] });
        assert!(filter < agg, "scans are cheaper per row than hash aggregation");
        assert!(agg <= sky, "dominance checks are the most expensive");
    }

    #[test]
    fn filter_with_like_residual_matches() {
        // The switch weakens the predicate (LIKE → T); the master must
        // re-check and land on the exact count.
        let cluster = Cluster::default();
        let t = test_table(4_000, 4);
        let q = DbQuery::FilterCount {
            pred: DbPredicate::Or(vec![
                DbPredicate::CmpInt { col: 1, op: IntCmp::Gt, lit: 9_000 },
                DbPredicate::And(vec![
                    DbPredicate::CmpInt { col: 2, op: IntCmp::Gt, lit: 50 },
                    DbPredicate::Like { col: 0, pattern: LikePattern::parse("agent-1%") },
                ]),
            ]),
        };
        let base = cluster.run_baseline(&q, &t, None);
        let chee = cluster.run_cheetah(&q, &t, None).unwrap();
        assert_eq!(base.output, chee.output);
    }

    #[test]
    fn switch_prunes_a_meaningful_fraction() {
        let cluster = Cluster::default();
        let t = test_table(20_000, 4);
        let chee = cluster.run_cheetah(&DbQuery::Distinct { col: 0 }, &t, None).unwrap();
        // 50 distinct agents over 20k rows: pruning should be massive.
        assert!(
            chee.switch_stats.pruned_fraction() > 0.95,
            "pruned only {}",
            chee.switch_stats.pruned_fraction()
        );
        assert!(chee.breakdown.entries_to_master < 1_000);
    }

    #[test]
    fn cheetah_sends_more_wire_bytes_but_fewer_survive() {
        let cluster = Cluster::default();
        let t = test_table(20_000, 4);
        let q = DbQuery::GroupByMax { key_col: 0, val_col: 1 };
        let base = cluster.run_baseline(&q, &t, None);
        let chee = cluster.run_cheetah(&q, &t, None).unwrap();
        // Cheetah streams everything uncompressed through the switch…
        assert!(chee.breakdown.worker_wire_bytes > base.breakdown.worker_wire_bytes);
        // …but the master sees a pruned stream.
        assert!(chee.switch_stats.pruned > 0);
    }

    #[test]
    fn breakdown_completion_is_additive() {
        let b = ExecBreakdown {
            worker_seconds: 1.0,
            master_seconds: 2.0,
            worker_wire_bytes: 125_000_000, // 1 Gbit
            master_wire_bytes: 0,
            entries_to_master: 0,
            passes: 1,
        };
        let net = b.network_seconds(10.0);
        assert!((net - 0.1).abs() < 1e-9);
        assert!((b.completion_seconds(10.0) - 3.1).abs() < 1e-9);
    }

    #[test]
    fn rules_stay_in_paper_range() {
        let cluster = Cluster::default();
        let t = test_table(1_000, 2);
        for q in all_queries() {
            let chee = cluster.run_cheetah(&q, &t, None).unwrap();
            assert!(chee.rules <= 30, "{}: {} rules", q.kind(), chee.rules);
        }
    }

    #[test]
    fn filter_lowering_maps_columns_to_slots() {
        let pred = DbPredicate::And(vec![
            DbPredicate::CmpInt { col: 7, op: IntCmp::Lt, lit: 5 },
            DbPredicate::CmpInt { col: 3, op: IntCmp::Gt, lit: 1 },
        ]);
        let (cfg, cols) = filter_config_of(&pred, 0);
        assert_eq!(cols, vec![3, 7]);
        // Atom 0 references table col 7 → slot 1; atom 1 → slot 0.
        match (&cfg.atoms[0], &cfg.atoms[1]) {
            (AtomSpec::Switch(p0), AtomSpec::Switch(p1)) => {
                assert_eq!(p0.col, 1);
                assert_eq!(p1.col, 0);
            }
            other => panic!("unexpected atoms: {other:?}"),
        }
    }

    #[test]
    fn repartitioned_tables_give_same_cheetah_output() {
        // Figure 6 varies the worker count; output must be invariant.
        let cluster = Cluster::default();
        let t = test_table(4_000, 4);
        let q = DbQuery::Distinct { col: 0 };
        let out4 = cluster.run_cheetah(&q, &t, None).unwrap().output;
        let out1 = cluster.run_cheetah(&q, &t.repartition(1), None).unwrap().output;
        let out8 = cluster.run_cheetah(&q, &t.repartition(8), None).unwrap().output;
        assert_eq!(out4, out1);
        assert_eq!(out4, out8);
    }
}

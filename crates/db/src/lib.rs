//! # cheetah-db — a columnar, partition-parallel mini query engine
//!
//! The Cheetah paper measures query completion time on Spark SQL with and
//! without switch pruning. This crate is the Spark stand-in: a small but
//! real query engine with the structural properties the paper's evaluation
//! depends on —
//!
//! * **columnar partitions** distributed over workers,
//! * a **worker/master split**: workers compute partial results over their
//!   partitions (in parallel threads), the master merges,
//! * **late materialization**: queries first run on the metadata columns,
//!   then fetch full rows for the surviving entry ids,
//! * a **Cheetah path** where workers only *serialize* the queried columns
//!   (no per-row computation), the switch prunes, and the master completes
//!   the query on the survivors — producing bit-identical output to the
//!   baseline path,
//! * a **sharded layer** ([`sharded`]) that routes rows to N worker
//!   shards (hash/range partitioners from `cheetah-core`), runs the
//!   generic executor per shard in parallel — each with its own switch
//!   program — and merges at the master ([`master`]) with per-operator
//!   semantics, preserving `Q(merge(shards(D))) = Q(D)`.
//!
//! What is modelled and what is not (smoltcp-style honesty):
//!
//! * **Modelled**: per-phase wall-clock measurement of real work (the
//!   operators actually execute), byte accounting for every transfer,
//!   worker parallelism via threads, the master ingest/buffering model
//!   behind Figure 9.
//! * **Not modelled**: SQL parsing, a cost-based optimizer, spilling,
//!   fault tolerance, or columnar compression codecs (compression is a
//!   constant factor applied to baseline transfer sizes, as §7.1 notes
//!   Spark compresses and Cheetah cannot).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baseline;
pub mod engine;
pub mod executor;
pub mod expr;
pub mod master;
pub mod operators;
pub mod ops;
pub mod planner;
pub mod query;
pub mod sharded;
pub mod table;
pub mod value;

#[cfg(test)]
mod testutil;

pub use cheetah_core::plan::{PlanDecision, PlanReport, ShardPlan};
pub use cheetah_core::{ShardPartitioner, Sharder};
pub use engine::{CheetahRun, CheetahTuning, Cluster, ExecBackend, ExecBreakdown, SparkRun};
pub use executor::{InterpretedEngine, Tables};
pub use expr::{DbPredicate, IntCmp, LikePattern};
pub use master::{decompose_output, merge_shard_outputs, MasterIngestModel, MergeItem, MergeState};
pub use planner::{
    fixed_sharder, routing_keys, Calibration, ChooserArm, ExecPath, PathChooser, PlannerConfig,
    ShardPlanner,
};
pub use query::{DbQuery, QueryOutput};
pub use sharded::{finish_sharded, route_range, ShardSpec, ShardStats, ShardedRun};
pub use table::{Column, Partition, Table, TableBuilder};
pub use value::{DataType, Value};

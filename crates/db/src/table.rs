//! Columnar tables split into partitions.
//!
//! A [`Table`] is a schema plus a list of [`Partition`]s; each partition is
//! a set of equal-length columns. One worker owns one (or more) partitions,
//! mirroring Spark's task-per-partition execution.

use crate::value::{DataType, Value};
use serde::{Deserialize, Serialize};

/// One column of a partition.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Column {
    /// Integer column.
    Int(Vec<i64>),
    /// String column.
    Str(Vec<String>),
}

impl Column {
    /// Number of rows.
    pub fn len(&self) -> usize {
        match self {
            Column::Int(v) => v.len(),
            Column::Str(v) => v.len(),
        }
    }

    /// Is the column empty?
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The column's type.
    pub fn data_type(&self) -> DataType {
        match self {
            Column::Int(_) => DataType::Int,
            Column::Str(_) => DataType::Str,
        }
    }

    /// Cell accessor (clones — used on output paths, not inner loops).
    pub fn get(&self, row: usize) -> Value {
        match self {
            Column::Int(v) => Value::Int(v[row]),
            Column::Str(v) => Value::Str(v[row].clone()),
        }
    }

    /// Integer view, or `None` for string columns.
    pub fn as_int(&self) -> Option<&[i64]> {
        match self {
            Column::Int(v) => Some(v),
            Column::Str(_) => None,
        }
    }

    /// String view, or `None` for int columns.
    pub fn as_str(&self) -> Option<&[String]> {
        match self {
            Column::Str(v) => Some(v),
            Column::Int(_) => None,
        }
    }

    /// Approximate in-memory/wire size of the whole column.
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Column::Int(v) => v.len() as u64 * 8,
            Column::Str(v) => v.iter().map(|s| 4 + s.len() as u64).sum(),
        }
    }
}

/// One horizontal slice of a table, owned by one worker.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Partition {
    columns: Vec<Column>,
    rows: usize,
}

impl Partition {
    /// Build from columns (all must have equal length).
    pub fn new(columns: Vec<Column>) -> Self {
        let rows = columns.first().map_or(0, Column::len);
        assert!(
            columns.iter().all(|c| c.len() == rows),
            "all columns of a partition must have the same length"
        );
        Self { columns, rows }
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Column accessor.
    pub fn column(&self, i: usize) -> &Column {
        &self.columns[i]
    }

    /// Number of columns.
    pub fn width(&self) -> usize {
        self.columns.len()
    }

    /// Full row as values (output paths only).
    pub fn row(&self, r: usize) -> Vec<Value> {
        self.columns.iter().map(|c| c.get(r)).collect()
    }
}

/// A schema'd table split into partitions.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Table {
    name: String,
    fields: Vec<(String, DataType)>,
    partitions: Vec<Partition>,
}

impl Table {
    /// Table name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Field names and types.
    pub fn fields(&self) -> &[(String, DataType)] {
        &self.fields
    }

    /// Index of a named column.
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.fields.iter().position(|(n, _)| n == name)
    }

    /// The partitions.
    pub fn partitions(&self) -> &[Partition] {
        &self.partitions
    }

    /// Total row count.
    pub fn rows(&self) -> usize {
        self.partitions.iter().map(Partition::rows).sum()
    }

    /// Fetch one row by (partition, row) entry id.
    pub fn fetch(&self, partition: usize, row: usize) -> Vec<Value> {
        self.partitions[partition].row(row)
    }

    /// Build a table from one ready-made partition. The routing fast path
    /// assembles shard slices column-wise and hands them over whole, so it
    /// never pays the row builder's per-cell [`Value`] boxing.
    pub fn from_partition(
        name: impl Into<String>,
        fields: Vec<(String, DataType)>,
        partition: Partition,
    ) -> Self {
        assert_eq!(partition.width(), fields.len(), "partition arity mismatch");
        for ((name, ty), col) in fields.iter().zip(&partition.columns) {
            assert_eq!(col.data_type(), *ty, "column {name} does not match its declared type");
        }
        Table { name: name.into(), fields, partitions: vec![partition] }
    }

    /// Re-split the same rows into `n` balanced partitions (Figure 6
    /// varies the partition count over a fixed dataset).
    pub fn repartition(&self, n: usize) -> Table {
        assert!(n > 0, "need at least one partition");
        let total = self.rows();
        let per = total.div_ceil(n);
        // Gather row-major, then rebuild columns per chunk. This is a setup
        // path, not a measured path, so clarity over speed.
        let mut rows: Vec<Vec<Value>> = Vec::with_capacity(total);
        for p in &self.partitions {
            for r in 0..p.rows() {
                rows.push(p.row(r));
            }
        }
        let mut partitions = Vec::with_capacity(n);
        for chunk in rows.chunks(per.max(1)) {
            let mut cols: Vec<Column> = self
                .fields
                .iter()
                .map(|(_, t)| match t {
                    DataType::Int => Column::Int(Vec::with_capacity(chunk.len())),
                    DataType::Str => Column::Str(Vec::with_capacity(chunk.len())),
                })
                .collect();
            for row in chunk {
                for (c, v) in cols.iter_mut().zip(row) {
                    match (c, v) {
                        (Column::Int(vec), Value::Int(x)) => vec.push(*x),
                        (Column::Str(vec), Value::Str(s)) => vec.push(s.clone()),
                        _ => panic!("row value type does not match schema"),
                    }
                }
            }
            partitions.push(Partition::new(cols));
        }
        while partitions.len() < n {
            // Degenerate tiny tables: pad with empty partitions.
            let cols = self
                .fields
                .iter()
                .map(|(_, t)| match t {
                    DataType::Int => Column::Int(Vec::new()),
                    DataType::Str => Column::Str(Vec::new()),
                })
                .collect();
            partitions.push(Partition::new(cols));
        }
        Table { name: self.name.clone(), fields: self.fields.clone(), partitions }
    }
}

/// Row-oriented builder used by the workload generators.
#[derive(Debug)]
pub struct TableBuilder {
    name: String,
    fields: Vec<(String, DataType)>,
    current: Vec<Column>,
    partitions: Vec<Partition>,
    rows_per_partition: usize,
}

impl TableBuilder {
    /// Start a table with the given schema, cutting partitions every
    /// `rows_per_partition` rows.
    pub fn new(
        name: impl Into<String>,
        fields: Vec<(String, DataType)>,
        rows_per_partition: usize,
    ) -> Self {
        assert!(rows_per_partition > 0);
        let current = fields
            .iter()
            .map(|(_, t)| match t {
                DataType::Int => Column::Int(Vec::new()),
                DataType::Str => Column::Str(Vec::new()),
            })
            .collect();
        Self { name: name.into(), fields, current, partitions: Vec::new(), rows_per_partition }
    }

    /// Append one row.
    pub fn push_row(&mut self, row: Vec<Value>) {
        assert_eq!(row.len(), self.fields.len(), "row arity mismatch");
        for (c, v) in self.current.iter_mut().zip(row) {
            match (c, v) {
                (Column::Int(vec), Value::Int(x)) => vec.push(x),
                (Column::Str(vec), Value::Str(s)) => vec.push(s),
                _ => panic!("row value type does not match schema"),
            }
        }
        if self.current[0].len() >= self.rows_per_partition {
            self.cut();
        }
    }

    /// Close the partition being filled, even mid-way: the rows pushed
    /// since the last cut become one partition (possibly empty). Lets
    /// generators build tables with *unequal* partition sizes — skewed
    /// worker loads — which the fixed `rows_per_partition` cadence cannot
    /// express.
    pub fn cut_partition(&mut self) {
        self.cut();
    }

    fn cut(&mut self) {
        let fresh: Vec<Column> = self
            .fields
            .iter()
            .map(|(_, t)| match t {
                DataType::Int => Column::Int(Vec::new()),
                DataType::Str => Column::Str(Vec::new()),
            })
            .collect();
        let full = std::mem::replace(&mut self.current, fresh);
        self.partitions.push(Partition::new(full));
    }

    /// Finish the table.
    pub fn build(mut self) -> Table {
        if !self.current[0].is_empty() || self.partitions.is_empty() {
            self.cut();
        }
        Table { name: self.name, fields: self.fields, partitions: self.partitions }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Table {
        let mut b = TableBuilder::new(
            "products",
            vec![("name".into(), DataType::Str), ("price".into(), DataType::Int)],
            2,
        );
        for (n, p) in [("Burger", 4i64), ("Pizza", 7), ("Fries", 2), ("Jello", 5)] {
            b.push_row(vec![Value::Str(n.into()), Value::Int(p)]);
        }
        b.build()
    }

    #[test]
    fn builder_cuts_partitions() {
        let t = sample();
        assert_eq!(t.rows(), 4);
        assert_eq!(t.partitions().len(), 2);
        assert_eq!(t.partitions()[0].rows(), 2);
    }

    #[test]
    fn column_lookup_and_fetch() {
        let t = sample();
        assert_eq!(t.column_index("price"), Some(1));
        assert_eq!(t.column_index("nope"), None);
        assert_eq!(t.fetch(1, 0), vec![Value::Str("Fries".into()), Value::Int(2)]);
    }

    #[test]
    fn repartition_preserves_rows() {
        let t = sample();
        for n in 1..=5 {
            let r = t.repartition(n);
            assert_eq!(r.partitions().len(), n);
            assert_eq!(r.rows(), 4);
            // Same multiset of rows.
            let mut all: Vec<Vec<Value>> = Vec::new();
            for (pi, p) in r.partitions().iter().enumerate() {
                for ri in 0..p.rows() {
                    all.push(r.fetch(pi, ri));
                }
            }
            all.sort();
            let mut want: Vec<Vec<Value>> = (0..2)
                .flat_map(|pi| (0..t.partitions()[pi].rows()).map(move |ri| (pi, ri)))
                .map(|(pi, ri)| t.fetch(pi, ri))
                .collect();
            want.sort();
            assert_eq!(all, want);
        }
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn unequal_columns_rejected() {
        let _ = Partition::new(vec![Column::Int(vec![1, 2]), Column::Int(vec![1])]);
    }

    #[test]
    fn empty_table_builds() {
        let b = TableBuilder::new("empty", vec![("x".into(), DataType::Int)], 10);
        let t = b.build();
        assert_eq!(t.rows(), 0);
        assert_eq!(t.partitions().len(), 1);
    }

    #[test]
    fn column_wire_bytes() {
        let c = Column::Str(vec!["ab".into(), "c".into()]);
        assert_eq!(c.wire_bytes(), (4 + 2) + (4 + 1));
        assert_eq!(Column::Int(vec![1, 2, 3]).wire_bytes(), 24);
    }
}

//! Sharded parallel execution: N workers, N switch programs, one master.
//!
//! The paper's deployment model (§2) is inherently sharded: data is
//! partitioned across workers, each worker's traffic is pruned locally at
//! its switch, and the master completes the query from the pruned union.
//! [`Cluster::run_cheetah_sharded`] makes that structural:
//!
//! 1. **Route** — every row of the input table(s) is routed to one of `N`
//!    shards by a [`Sharder`] (hash or range, [`ShardPartitioner`]) over a
//!    per-query routing key: the group/join key for keyed queries (which
//!    makes keyed merges exact), the order column for TOP N, a row-id hash
//!    for scans and skylines.
//! 2. **Execute** — each shard runs the *unchanged* generic executor
//!    ([`Cluster::execute`]) on a `std::thread::scope` worker: its own
//!    planned `Pipeline`-backed switch program, its own serialize → prune
//!    → complete dataflow over its slice.
//! 3. **Merge** — the master merges the shard outputs with the
//!    per-operator semantics of [`merge_shard_outputs`]
//!    (re-prune / key-union / count-sum), and the modelled ingest cost of
//!    the concurrent survivor streams comes from [`MasterIngestModel`]
//!    with §4.6's shard fan-in.
//!
//! The equivalence contract is `Q(merge(shards(D))) = Q(D)` for every
//! query shape, shard count, and partitioner — enforced by the
//! `shard_contract` test suite (a named CI gate, like the pruning
//! contract).

use crate::engine::{CheetahRun, Cluster};
use crate::master::merge_shard_outputs;
use crate::planner::{fixed_sharder, routing_keys};
use crate::query::{DbQuery, QueryOutput};
use crate::table::{Column, Partition, Table};
use crate::value::DataType;
use cheetah_core::plan::{PlanDecision, ShardPlan};
use cheetah_core::{ShardPartitioner, Sharder};
use cheetah_net::{ExecBreakdown, MasterIngestModel};
use cheetah_switch::ProgramStats;
use std::time::Instant;

/// How to shard a query's execution.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ShardSpec {
    /// Worker shard count.
    pub shards: usize,
    /// Row-routing family.
    pub partitioner: ShardPartitioner,
    /// Master ingest model applied to the merged survivor streams.
    pub ingest: MasterIngestModel,
}

impl ShardSpec {
    /// `shards` workers with the given partitioner and the default rack
    /// ingest model.
    pub fn new(shards: usize, partitioner: ShardPartitioner) -> Self {
        Self { shards, partitioner, ingest: MasterIngestModel::default_rack() }
    }
}

impl Default for ShardSpec {
    fn default() -> Self {
        Self::new(4, ShardPartitioner::Hash)
    }
}

/// Per-shard observability of one sharded run.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct ShardStats {
    /// Rows routed to this shard (left + right stream).
    pub rows: u64,
    /// The shard worker's serialize/compute seconds.
    pub worker_seconds: f64,
    /// The shard's completion seconds (its local `complete` run).
    pub master_seconds: f64,
    /// Bytes the shard's busiest worker put on its uplink.
    pub worker_wire_bytes: u64,
    /// Bytes this shard contributed to the master downlink.
    pub master_wire_bytes: u64,
    /// Survivor entries this shard streamed to the master.
    pub entries_to_master: u64,
    /// Entries this shard's switch saw.
    pub seen: u64,
    /// Entries this shard's switch pruned.
    pub pruned: u64,
}

/// Result of a sharded Cheetah execution.
#[derive(Debug, Clone)]
pub struct ShardedRun {
    /// Merged, normalized query output — equal to the unsharded run's.
    pub output: QueryOutput,
    /// Aggregated phase breakdown: slowest shard's worker phase, summed
    /// master-side completion + merge, per-shard-summed master bytes, and
    /// the modelled shard-fan-in ingest latency.
    pub breakdown: ExecBreakdown,
    /// Switch statistics summed across the shard programs.
    pub switch_stats: ProgramStats,
    /// Per-shard byte/entry accounting (the §4.6 skew story).
    pub per_shard: Vec<ShardStats>,
    /// Master-side merge time (the re-prune/key-union stage alone).
    pub merge_seconds: f64,
    /// Control-plane rules of the largest shard program.
    pub rules: usize,
    /// The planner's plan, when this run came through
    /// [`Cluster::run_cheetah_planned`]; `None` for hand-picked specs.
    pub plan: Option<ShardPlan>,
}

/// Route rows `[lo, hi)` of `table` (by global row index) to
/// `sharder.shards()` single-partition sub-tables, using the precomputed
/// per-row routing `keys`. Shards that receive no rows become empty
/// tables (one empty partition), which the executor handles like any
/// degenerate input.
///
/// Public because the streamed runtime's router dispatches the same
/// splitting in *rounds* — one routing loop, shared by every twin, so a
/// cadence or empty-shard fix can never diverge the dataflows.
pub fn route_range(
    table: &Table,
    keys: &[u64],
    sharder: &Sharder,
    lo: usize,
    hi: usize,
) -> Vec<Table> {
    let shards = sharder.shards();
    let empty_cols = || -> Vec<Column> {
        table
            .fields()
            .iter()
            .map(|(_, t)| match t {
                DataType::Int => Column::Int(Vec::new()),
                DataType::Str => Column::Str(Vec::new()),
            })
            .collect()
    };
    let mut out: Vec<Vec<Column>> = (0..shards).map(|_| empty_cols()).collect();
    // Scratch: local row indices per shard, recomputed per partition. Rows
    // move column-at-a-time — one type dispatch per (shard, column) instead
    // of one boxed `Value` per cell, which is what the old row builder paid.
    let mut picks: Vec<Vec<u32>> = vec![Vec::new(); shards];
    let mut base = 0usize;
    for p in table.partitions() {
        let rows = p.rows();
        if base + rows > lo && base < hi {
            let from = lo.saturating_sub(base);
            let to = rows.min(hi - base);
            for list in &mut picks {
                list.clear();
            }
            for r in from..to {
                picks[sharder.shard_of(keys[base + r])].push(r as u32);
            }
            for (s, list) in picks.iter().enumerate() {
                if list.is_empty() {
                    continue;
                }
                for (c, dst_col) in out[s].iter_mut().enumerate() {
                    match (dst_col, p.column(c)) {
                        (Column::Int(dst), Column::Int(src)) => {
                            dst.extend(list.iter().map(|&r| src[r as usize]));
                        }
                        (Column::Str(dst), Column::Str(src)) => {
                            dst.extend(list.iter().map(|&r| src[r as usize].clone()));
                        }
                        _ => unreachable!("partition column type drifted from the schema"),
                    }
                }
            }
        }
        base += rows;
        if base >= hi {
            break;
        }
    }
    out.into_iter()
        .map(|cols| {
            Table::from_partition(table.name(), table.fields().to_vec(), Partition::new(cols))
        })
        .collect()
}

/// Split the whole `table` into shard tables — the barrier paths' single
/// "round".
fn split_stream(table: &Table, keys: &[u64], sharder: &Sharder) -> Vec<Table> {
    route_range(table, keys, sharder, 0, table.rows())
}

impl Cluster {
    /// Execute `q` sharded: route rows to `spec.shards` workers, run the
    /// generic pruned executor per shard on scoped threads (each with its
    /// own planned switch program), and merge at the master.
    ///
    /// Output equals [`run_cheetah`](Cluster::run_cheetah)'s for every
    /// query shape — the `Q(merge(shards(D))) = Q(D)` contract.
    ///
    /// **Deprecated**: prefer the serving plane's front door — build a
    /// `cheetah_serve::QueryRequest` (pin a shard count with
    /// `.shards(n)`) and call `Session::run_blocking` /
    /// `Session::submit`. This entry point stays as the shim the
    /// serving contract gates verify bit-identity against.
    #[doc(hidden)]
    pub fn run_cheetah_sharded(
        &self,
        q: &DbQuery,
        left: &Table,
        right: Option<&Table>,
        spec: &ShardSpec,
    ) -> cheetah_core::Result<ShardedRun> {
        let seed = self.tuning.seed;
        let left_keys = routing_keys(q, 0, left, seed);
        let right_keys = right.map(|r| routing_keys(q, 1, r, seed));
        let key_slices: Vec<&[u64]> =
            std::iter::once(left_keys.as_slice()).chain(right_keys.as_deref()).collect();
        let sharder = fixed_sharder(spec, seed, &key_slices);
        self.run_cheetah_routed(
            q,
            left,
            right,
            &left_keys,
            right_keys.as_deref(),
            &sharder,
            &spec.ingest,
            PlanDecision::Fixed(spec.partitioner),
            None,
        )
    }

    /// The shared sharded dataflow behind both the fixed-spec and the
    /// planned entry points: split by precomputed routing keys, run the
    /// generic executor per shard, merge at the master, account.
    ///
    /// Public so callers that already hold routing keys and a fitted
    /// sharder (the perf-smoke harness, the runtime's pooled barrier
    /// path) can time *execution* without re-paying key derivation and
    /// sharder fitting per run.
    ///
    /// **Deprecated**: prefer the serving plane's front door — the
    /// `Session` keeps routed layouts resident in its layout cache, so
    /// a `cheetah_serve::QueryRequest` gets the same
    /// pay-execution-only behaviour without hand-threading keys and
    /// sharders. This entry point stays as the shim the serving
    /// contract gates verify bit-identity against.
    #[doc(hidden)]
    #[allow(clippy::too_many_arguments)]
    pub fn run_cheetah_routed(
        &self,
        q: &DbQuery,
        left: &Table,
        right: Option<&Table>,
        left_keys: &[u64],
        right_keys: Option<&[u64]>,
        sharder: &Sharder,
        ingest: &MasterIngestModel,
        decision: PlanDecision,
        plan: Option<ShardPlan>,
    ) -> cheetah_core::Result<ShardedRun> {
        let shards = sharder.shards();
        let left_shards = split_stream(left, left_keys, sharder);
        let right_shards =
            right.map(|r| split_stream(r, right_keys.expect("keys computed"), sharder));
        let rows_per_shard: Vec<u64> = (0..shards)
            .map(|s| {
                left_shards[s].rows() as u64
                    + right_shards.as_ref().map_or(0, |v| v[s].rows() as u64)
            })
            .collect();

        // One scoped worker per shard; each runs the unchanged generic
        // executor over its slice, planning its own Pipeline instance.
        let results: Vec<cheetah_core::Result<CheetahRun>> = std::thread::scope(|sc| {
            let handles: Vec<_> = (0..shards)
                .map(|s| {
                    let l = &left_shards[s];
                    let r = right_shards.as_ref().map(|v| &v[s]);
                    sc.spawn(move || self.run_cheetah(q, l, r))
                })
                .collect();
            handles.into_iter().map(|h| h.join().expect("shard worker panicked")).collect()
        });
        let runs: Vec<CheetahRun> = results.into_iter().collect::<cheetah_core::Result<_>>()?;
        Ok(finish_sharded(q, runs, &rows_per_shard, ingest, decision, plan))
    }
}

/// Merge and account a set of per-shard executor runs into a
/// [`ShardedRun`] — the master-side tail of every barrier dataflow.
/// `rows_per_shard[s]` is the rows routed to shard `s` (left + right
/// stream); `runs[s]` is that shard's completed executor run.
///
/// Public so the runtime's pooled barrier twin reuses exactly this
/// accounting: however the per-shard runs were executed (scoped threads
/// here, leased pool workers there), the merge semantics and the phase
/// arithmetic must stay one implementation.
pub fn finish_sharded(
    q: &DbQuery,
    runs: Vec<CheetahRun>,
    rows_per_shard: &[u64],
    ingest: &MasterIngestModel,
    decision: PlanDecision,
    plan: Option<ShardPlan>,
) -> ShardedRun {
    assert_eq!(runs.len(), rows_per_shard.len(), "one row count per shard run");
    let per_shard: Vec<ShardStats> = runs
        .iter()
        .zip(rows_per_shard)
        .map(|(run, &rows)| ShardStats {
            rows,
            worker_seconds: run.breakdown.worker_seconds,
            master_seconds: run.breakdown.master_seconds,
            worker_wire_bytes: run.breakdown.worker_wire_bytes,
            master_wire_bytes: run.breakdown.master_wire_bytes,
            entries_to_master: run.breakdown.entries_to_master,
            seen: run.switch_stats.seen,
            pruned: run.switch_stats.pruned,
        })
        .collect();
    let entries_per_shard: Vec<u64> = per_shard.iter().map(|s| s.entries_to_master).collect();
    let switch_stats = runs.iter().fold(ProgramStats::default(), |mut acc, r| {
        acc.seen += r.switch_stats.seen;
        acc.pruned += r.switch_stats.pruned;
        acc.forwarded += r.switch_stats.forwarded;
        acc
    });
    let passes = runs.iter().map(|r| r.breakdown.passes).max().unwrap_or(1);
    let rules = runs.iter().map(|r| r.rules).max().unwrap_or(0);
    // Every shard ran the same cluster, so the first run's backend speaks
    // for all of them (a compiled-requested run that fell back records
    // the fallback here too).
    let backend = runs.first().map(|r| r.breakdown.backend).unwrap_or_default();

    // Master: merge the shard outputs. Stats are extracted above so
    // the outputs move into the merge — the timed window is the
    // re-prune/key-union work alone, not avoidable clones.
    let outputs: Vec<QueryOutput> = runs.into_iter().map(|r| r.output).collect();
    let t0 = Instant::now();
    let output = merge_shard_outputs(q, outputs);
    let merge_seconds = t0.elapsed().as_secs_f64();

    let breakdown = ExecBreakdown {
        // Shard workers run concurrently: the slowest bounds the phase.
        worker_seconds: per_shard.iter().map(|s| s.worker_seconds).fold(0.0, f64::max),
        // The master is one machine: shard completions + merge add up.
        master_seconds: per_shard.iter().map(|s| s.master_seconds).sum::<f64>() + merge_seconds,
        worker_wire_bytes: per_shard.iter().map(|s| s.worker_wire_bytes).max().unwrap_or(0),
        master_wire_bytes: per_shard.iter().map(|s| s.master_wire_bytes).sum(),
        entries_to_master: entries_per_shard.iter().sum(),
        passes,
        shards: rows_per_shard.len() as u32,
        master_ingest_seconds: ingest.blocking_latency_sharded(&entries_per_shard),
        plan: Some(decision),
        overlap_seconds: 0.0,
        replans: 0,
        backend,
        ..ExecBreakdown::default()
    };
    ShardedRun { output, breakdown, switch_stats, per_shard, merge_seconds, rules, plan }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::{all_queries, test_table};

    #[test]
    fn sharded_equals_unsharded_for_every_unary_query() {
        let cluster = Cluster::default();
        let t = test_table(3_000, 4);
        for q in all_queries() {
            let single = cluster.run_cheetah(&q, &t, None).unwrap();
            for partitioner in [ShardPartitioner::Hash, ShardPartitioner::Range] {
                let spec = ShardSpec::new(4, partitioner);
                let sharded = cluster.run_cheetah_sharded(&q, &t, None, &spec).unwrap();
                assert_eq!(
                    single.output,
                    sharded.output,
                    "{} diverged under {} sharding",
                    q.kind(),
                    partitioner.name()
                );
            }
        }
    }

    #[test]
    fn one_shard_degenerates_to_the_unsharded_run() {
        let cluster = Cluster::default();
        let t = test_table(2_000, 3);
        let q = DbQuery::Distinct { col: 0 };
        let single = cluster.run_cheetah(&q, &t, None).unwrap();
        let spec = ShardSpec::new(1, ShardPartitioner::Hash);
        let sharded = cluster.run_cheetah_sharded(&q, &t, None, &spec).unwrap();
        assert_eq!(single.output, sharded.output);
        assert_eq!(sharded.breakdown.shards, 1);
        assert_eq!(sharded.per_shard.len(), 1);
        assert_eq!(sharded.per_shard[0].rows, 2_000);
    }

    #[test]
    fn join_co_partitioning_sums_to_the_global_pair_count() {
        let cluster = Cluster::default();
        let l = test_table(2_000, 2);
        let r = test_table(1_500, 3);
        let q = DbQuery::Join { left_key: 0, right_key: 0 };
        let single = cluster.run_cheetah(&q, &l, Some(&r)).unwrap();
        for partitioner in [ShardPartitioner::Hash, ShardPartitioner::Range] {
            let spec = ShardSpec::new(5, partitioner);
            let sharded = cluster.run_cheetah_sharded(&q, &l, Some(&r), &spec).unwrap();
            assert_eq!(single.output, sharded.output, "{}", partitioner.name());
        }
    }

    #[test]
    fn range_routing_fits_observed_key_bounds() {
        // Encoded small ints cluster just above 2⁶³; a naive full-space
        // range split would put every row on one shard. Fitted bounds
        // must spread them over populated spans.
        let cluster = Cluster::default();
        let t = test_table(4_000, 4);
        let q = DbQuery::TopN { order_col: 1, n: 10 };
        let spec = ShardSpec::new(4, ShardPartitioner::Range);
        let run = cluster.run_cheetah_sharded(&q, &t, None, &spec).unwrap();
        let loads: Vec<u64> = run.per_shard.iter().map(|s| s.rows).collect();
        let nonempty = loads.iter().filter(|&&r| r > 0).count();
        assert!(nonempty >= 3, "range spans must be populated: {loads:?}");
        // String fingerprints fill only the lower half of the u64 space;
        // fitted bounds must still populate the upper shards.
        let qd = DbQuery::Distinct { col: 0 };
        let run = cluster.run_cheetah_sharded(&qd, &t, None, &spec).unwrap();
        let loads: Vec<u64> = run.per_shard.iter().map(|s| s.rows).collect();
        assert!(
            loads.iter().filter(|&&r| r > 0).count() >= 3,
            "string-keyed range spans must be populated: {loads:?}"
        );
    }

    #[test]
    fn per_shard_accounting_sums_to_the_breakdown() {
        let cluster = Cluster::default();
        let t = test_table(4_000, 4);
        let q = DbQuery::GroupByMax { key_col: 0, val_col: 1 };
        let spec = ShardSpec::default();
        let run = cluster.run_cheetah_sharded(&q, &t, None, &spec).unwrap();
        assert_eq!(run.per_shard.len(), 4);
        assert_eq!(run.per_shard.iter().map(|s| s.rows).sum::<u64>(), 4_000);
        assert_eq!(
            run.breakdown.master_wire_bytes,
            run.per_shard.iter().map(|s| s.master_wire_bytes).sum::<u64>()
        );
        assert_eq!(
            run.breakdown.entries_to_master,
            run.per_shard.iter().map(|s| s.entries_to_master).sum::<u64>()
        );
        assert_eq!(run.switch_stats.seen, run.per_shard.iter().map(|s| s.seen).sum::<u64>());
        assert!(run.breakdown.master_ingest_seconds > 0.0, "ingest model must be threaded");
    }

    #[test]
    fn empty_table_shards_cleanly() {
        let cluster = Cluster::default();
        let t = crate::table::TableBuilder::new(
            "empty",
            vec![
                ("agent".into(), crate::value::DataType::Str),
                ("revenue".into(), crate::value::DataType::Int),
            ],
            8,
        )
        .build();
        let q = DbQuery::Distinct { col: 0 };
        let spec = ShardSpec::new(7, ShardPartitioner::Range);
        let run = cluster.run_cheetah_sharded(&q, &t, None, &spec).unwrap();
        assert_eq!(run.output, QueryOutput::Values(vec![]));
        assert_eq!(run.breakdown.entries_to_master, 0);
        assert_eq!(run.breakdown.master_ingest_seconds, 0.0);
    }

    #[test]
    fn more_shards_than_rows_leaves_empty_shards() {
        let cluster = Cluster::default();
        let t = test_table(3, 1);
        let q = DbQuery::TopN { order_col: 1, n: 2 };
        let single = cluster.run_cheetah(&q, &t, None).unwrap();
        let spec = ShardSpec::new(7, ShardPartitioner::Hash);
        let run = cluster.run_cheetah_sharded(&q, &t, None, &spec).unwrap();
        assert_eq!(single.output, run.output);
        assert!(run.per_shard.iter().filter(|s| s.rows == 0).count() >= 4, "empty shards exist");
    }
}

//! `SELECT COUNT(*) WHERE <pred>` — filtering, §4.1 Example #1.
//!
//! Switch-evaluable atoms (integer comparisons) prune on the switch;
//! external atoms (LIKE) are tautology-substituted there and re-checked by
//! the master, which evaluates the *full* predicate on the survivors.

use crate::executor::Tables;
use crate::expr::DbPredicate;
use crate::ops;
use crate::query::QueryOutput;
use crate::value::encode_ordered_i64;
use cheetah_core::{
    AtomSpec, BoolExpr, CmpOp, ExternalMode, FilterConfig, Predicate, PruningOperator, QuerySpec,
};
use cheetah_net::Encoded;

/// The filtering operator: predicate lowering + master-side re-check.
pub struct FilterOp<'q> {
    pred: &'q DbPredicate,
    cfg: FilterConfig,
    slots: Vec<usize>,
}

impl<'q> FilterOp<'q> {
    /// Compile `pred` into the switch filter configuration and packet slot
    /// layout.
    pub fn new(pred: &'q DbPredicate) -> Self {
        let (cfg, slots) = filter_config_of(pred);
        Self { pred, cfg, slots }
    }
}

impl<'a, 'q> PruningOperator<Tables<'a>, Encoded> for FilterOp<'q> {
    type Output = QueryOutput;

    fn kind(&self) -> &'static str {
        "filter-count"
    }

    fn spec(&self) -> cheetah_core::Result<QuerySpec> {
        Ok(QuerySpec::Filter(self.cfg.clone()))
    }

    fn encode(&self, src: &Tables<'a>, stream: usize, part: usize, row: usize, out: &mut Vec<u64>) {
        let p = &super::stream_table(src, stream).partitions()[part];
        out.extend(
            self.slots
                .iter()
                .map(|&c| encode_ordered_i64(p.column(c).as_int().expect("int filter col")[row])),
        );
    }

    fn encode_part(
        &self,
        src: &Tables<'a>,
        stream: usize,
        part: usize,
        rows: usize,
        sink: &mut dyn FnMut(&[u64]),
    ) {
        // Hoisted twin of `encode`: resolve every referenced column to a
        // raw slice once per partition.
        let p = &super::stream_table(src, stream).partitions()[part];
        let cols: Vec<&[i64]> =
            self.slots.iter().map(|&c| p.column(c).as_int().expect("int filter col")).collect();
        let mut slots = vec![0u64; cols.len()];
        for r in 0..rows {
            for (out, col) in slots.iter_mut().zip(&cols) {
                *out = encode_ordered_i64(col[r]);
            }
            sink(&slots);
        }
    }

    fn complete(&self, src: &Tables<'a>, survivors: &[Vec<Encoded>]) -> QueryOutput {
        // Master: fetch survivors, evaluate the FULL predicate (including
        // atoms the switch replaced by tautologies), count.
        let mut count = 0u64;
        for e in &survivors[0] {
            let (pi, r) = e.id();
            if ops::eval_predicate(self.pred, &src.left.partitions()[pi], r) {
                count += 1;
            }
        }
        QueryOutput::Count(count)
    }
}

/// Compile a [`DbPredicate`] into the switch filter configuration plus the
/// packet slot layout: the unique int columns it references, in ascending
/// order, become packet values `0..k`. LIKE atoms become external atoms
/// (tautology-substituted; the master re-checks them on the survivors).
pub fn filter_config_of(pred: &DbPredicate) -> (FilterConfig, Vec<usize>) {
    // Slot layout: unique int columns in ascending order.
    let mut int_cols: Vec<usize> = Vec::new();
    collect_int_cols(pred, &mut int_cols);
    int_cols.sort_unstable();
    int_cols.dedup();
    let slot_of = |col: usize| int_cols.iter().position(|&c| c == col).expect("mapped col");
    let mut atoms: Vec<AtomSpec> = Vec::new();
    let expr = lower_pred(pred, &mut atoms, &slot_of);
    (FilterConfig { atoms, expr, external_mode: ExternalMode::Tautology }, int_cols)
}

fn collect_int_cols(pred: &DbPredicate, out: &mut Vec<usize>) {
    match pred {
        DbPredicate::CmpInt { col, .. } => out.push(*col),
        DbPredicate::Like { .. } => {}
        DbPredicate::And(xs) | DbPredicate::Or(xs) => {
            for x in xs {
                collect_int_cols(x, out);
            }
        }
    }
}

fn lower_pred(
    pred: &DbPredicate,
    atoms: &mut Vec<AtomSpec>,
    slot_of: &impl Fn(usize) -> usize,
) -> BoolExpr {
    match pred {
        DbPredicate::CmpInt { col, op, lit } => {
            let sw_op = match op {
                crate::expr::IntCmp::Gt => CmpOp::Gt,
                crate::expr::IntCmp::Ge => CmpOp::Ge,
                crate::expr::IntCmp::Lt => CmpOp::Lt,
                crate::expr::IntCmp::Le => CmpOp::Le,
                crate::expr::IntCmp::Eq => CmpOp::Eq,
                crate::expr::IntCmp::Ne => CmpOp::Ne,
            };
            atoms.push(AtomSpec::Switch(Predicate {
                col: slot_of(*col),
                op: sw_op,
                constant: encode_ordered_i64(*lit),
            }));
            BoolExpr::Atom(atoms.len() - 1)
        }
        DbPredicate::Like { col, .. } => {
            atoms.push(AtomSpec::External { name: format!("LIKE on column {col}") });
            BoolExpr::Atom(atoms.len() - 1)
        }
        DbPredicate::And(xs) => {
            BoolExpr::And(xs.iter().map(|x| lower_pred(x, atoms, slot_of)).collect())
        }
        DbPredicate::Or(xs) => {
            BoolExpr::Or(xs.iter().map(|x| lower_pred(x, atoms, slot_of)).collect())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Cluster;
    use crate::expr::{IntCmp, LikePattern};
    use crate::query::DbQuery;
    use crate::testutil::test_table;

    #[test]
    fn filter_lowering_maps_columns_to_slots() {
        let pred = DbPredicate::And(vec![
            DbPredicate::CmpInt { col: 7, op: IntCmp::Lt, lit: 5 },
            DbPredicate::CmpInt { col: 3, op: IntCmp::Gt, lit: 1 },
        ]);
        let (cfg, cols) = filter_config_of(&pred);
        assert_eq!(cols, vec![3, 7]);
        // Atom 0 references table col 7 → slot 1; atom 1 → slot 0.
        match (&cfg.atoms[0], &cfg.atoms[1]) {
            (AtomSpec::Switch(p0), AtomSpec::Switch(p1)) => {
                assert_eq!(p0.col, 1);
                assert_eq!(p1.col, 0);
            }
            other => panic!("unexpected atoms: {other:?}"),
        }
    }

    #[test]
    fn filter_with_like_residual_matches() {
        // The switch weakens the predicate (LIKE → T); the master must
        // re-check and land on the exact count.
        let cluster = Cluster::default();
        let t = test_table(4_000, 4);
        let q = DbQuery::FilterCount {
            pred: DbPredicate::Or(vec![
                DbPredicate::CmpInt { col: 1, op: IntCmp::Gt, lit: 9_000 },
                DbPredicate::And(vec![
                    DbPredicate::CmpInt { col: 2, op: IntCmp::Gt, lit: 50 },
                    DbPredicate::Like { col: 0, pattern: LikePattern::parse("agent-1%") },
                ]),
            ]),
        };
        let base = cluster.run_baseline(&q, &t, None);
        let chee = cluster.run_cheetah(&q, &t, None).unwrap();
        assert_eq!(base.output, chee.output);
    }
}

//! The seven query operators: one [`PruningOperator`] impl per query
//! shape, one file per operator.
//!
//! # The contract
//!
//! A [`PruningOperator`](cheetah_core::PruningOperator) answers exactly
//! four questions — everything else (threaded serialization, planning,
//! pass loops, byte accounting, timing) is the generic executor's job
//! ([`Cluster::execute`](crate::Cluster::execute)):
//!
//! | question | method | e.g. DISTINCT |
//! |---|---|---|
//! | which switch program? | `spec()` | `QuerySpec::Distinct(matrix cfg)` |
//! | how does a row become packet slots? | `encode()` | one slot: the encoded key |
//! | what does the master do with survivors? | `complete()` | collect + normalize values |
//! | what pass structure? | `pass_plan()` | [`PassPlan::Single`](cheetah_core::PassPlan) |
//!
//! The executor guarantees the pruning contract's shape: `complete`
//! receives *every* forwarded entry and may re-fetch the true row values
//! by entry id — so probabilistic switch structures (fingerprints, Bloom
//! filters, Count-Min) never corrupt the output, they only change how
//! much survives.
//!
//! # Adding a query type
//!
//! 1. Create `operators/<name>.rs` with a struct holding the query's
//!    parameters (plus whatever [`CheetahTuning`] knobs it reads).
//! 2. Implement `PruningOperator<Tables<'a>, Encoded>`: build the
//!    [`QuerySpec`](cheetah_core::QuerySpec) (add a pruning algorithm to
//!    `cheetah-core` first if none fits), encode the queried columns into
//!    value slots, and complete the query from the survivors. Pick the
//!    [`PassPlan`](cheetah_core::PassPlan) matching the algorithm's pass
//!    structure; `streams()`/`flow_id()` only matter for binary queries.
//! 3. Dispatch to it from
//!    [`Cluster::run_cheetah`](crate::Cluster::run_cheetah) (or call
//!    `Cluster::execute` directly for operators outside [`DbQuery`]).
//!
//! That is the whole surface: the eighth query type is a one-file PR.
//!
//! [`CheetahTuning`]: crate::engine::CheetahTuning
//! [`DbQuery`]: crate::query::DbQuery
//! [`PruningOperator`]: cheetah_core::PruningOperator

mod distinct;
mod filter;
mod groupby;
mod having;
mod join;
mod skyline;
mod topn;

pub use distinct::DistinctOp;
pub use filter::{filter_config_of, FilterOp};
pub use groupby::GroupByMaxOp;
pub use having::HavingSumOp;
pub use join::JoinOp;
pub use skyline::SkylineOp;
pub use topn::TopNOp;

use crate::executor::Tables;
use crate::table::Table;
use crate::value::{encode_ordered_i64, Value};
use cheetah_switch::HashFn;

/// The table behind stream `stream`. Operators run only under the generic
/// executor, which rejects a stream-arity mismatch with a typed error
/// before any operator code runs — so resolution here cannot fail.
pub(crate) fn stream_table<'a>(src: &Tables<'a>, stream: usize) -> &'a Table {
    src.stream(stream).expect("executor validates stream arity before running the operator")
}

/// Key encoding shared by the operators: ints map order-preservingly;
/// strings are 63-bit fingerprints (the CWorker cannot ship
/// variable-length strings in a fixed header — §5 Example #8).
pub(crate) fn encode_key(seed: u64, v: &Value) -> u64 {
    match v {
        Value::Int(x) => encode_ordered_i64(*x),
        Value::Str(s) => HashFn::from_seed(seed).hash_bytes(s.as_bytes()) >> 1,
    }
}

/// Clamped order-preserving 32-bit encoding for aggregate/order columns
/// (register cells hold 32-bit values; saturation only ever *reduces*
/// pruning, never correctness — saturated values tie and ties forward).
pub(crate) fn encode_i64_32(v: i64) -> u64 {
    (v.saturating_add(1 << 31).clamp(0, u32::MAX as i64)) as u64
}

//! `SELECT <key>, MAX(<val>) … GROUP BY` — §8 / Figure 10d.
//!
//! The switch's per-key running-max matrix forwards entries that improve
//! their group's maximum; the master re-aggregates the survivors exactly
//! by true key value (fingerprint collisions only reduce pruning).

use super::{encode_i64_32, encode_key};
use crate::engine::CheetahTuning;
use crate::executor::Tables;
use crate::query::QueryOutput;
use crate::value::Value;
use cheetah_core::{AggKind, GroupByConfig, PruningOperator, QuerySpec};
use cheetah_net::Encoded;
use std::collections::HashMap;

/// The GROUP BY (MAX) operator.
pub struct GroupByMaxOp {
    key_col: usize,
    val_col: usize,
    rows: usize,
    cols: usize,
    seed: u64,
}

impl GroupByMaxOp {
    /// MAX of `val_col` grouped by `key_col` with the cluster's matrix
    /// tuning.
    pub fn new(key_col: usize, val_col: usize, tuning: &CheetahTuning) -> Self {
        Self {
            key_col,
            val_col,
            rows: tuning.groupby_rows,
            cols: tuning.groupby_cols,
            seed: tuning.seed,
        }
    }
}

impl<'a> PruningOperator<Tables<'a>, Encoded> for GroupByMaxOp {
    type Output = QueryOutput;

    fn kind(&self) -> &'static str {
        "groupby-max"
    }

    fn spec(&self) -> cheetah_core::Result<QuerySpec> {
        Ok(QuerySpec::GroupBy(GroupByConfig {
            rows: self.rows,
            cols: self.cols,
            agg: AggKind::Max,
            key_bits: 31,
            seed: self.seed,
        }))
    }

    fn encode(&self, src: &Tables<'a>, stream: usize, part: usize, row: usize, out: &mut Vec<u64>) {
        let p = &super::stream_table(src, stream).partitions()[part];
        out.push(encode_key(self.seed, &p.column(self.key_col).get(row)));
        out.push(encode_i64_32(p.column(self.val_col).as_int().expect("int agg col")[row]));
    }

    fn complete(&self, src: &Tables<'a>, survivors: &[Vec<Encoded>]) -> QueryOutput {
        let mut best: HashMap<Value, i64> = HashMap::new();
        for e in &survivors[0] {
            let (pi, r) = e.id();
            let p = &src.left.partitions()[pi];
            let k = p.column(self.key_col).get(r);
            let v = p.column(self.val_col).as_int().expect("int agg col")[r];
            best.entry(k).and_modify(|m| *m = (*m).max(v)).or_insert(v);
        }
        QueryOutput::KeyedInts(best.into_iter().collect())
    }
}

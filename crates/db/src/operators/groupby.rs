//! `SELECT <key>, MAX(<val>) … GROUP BY` — §8 / Figure 10d.
//!
//! The switch's per-key running-max matrix forwards entries that improve
//! their group's maximum; the master re-aggregates the survivors exactly
//! by true key value (fingerprint collisions only reduce pruning).

use super::{encode_i64_32, encode_key};
use crate::engine::CheetahTuning;
use crate::executor::Tables;
use crate::query::QueryOutput;
use crate::table::Column;
use crate::value::{encode_ordered_i64, Value};
use cheetah_core::{AggKind, GroupByConfig, PruningOperator, QuerySpec};
use cheetah_net::Encoded;
use cheetah_switch::HashFn;
use std::collections::HashMap;

/// The GROUP BY (MAX) operator.
pub struct GroupByMaxOp {
    key_col: usize,
    val_col: usize,
    rows: usize,
    cols: usize,
    seed: u64,
}

impl GroupByMaxOp {
    /// MAX of `val_col` grouped by `key_col` with the cluster's matrix
    /// tuning.
    pub fn new(key_col: usize, val_col: usize, tuning: &CheetahTuning) -> Self {
        Self {
            key_col,
            val_col,
            rows: tuning.groupby_rows,
            cols: tuning.groupby_cols,
            seed: tuning.seed,
        }
    }
}

impl<'a> PruningOperator<Tables<'a>, Encoded> for GroupByMaxOp {
    type Output = QueryOutput;

    fn kind(&self) -> &'static str {
        "groupby-max"
    }

    fn spec(&self) -> cheetah_core::Result<QuerySpec> {
        Ok(QuerySpec::GroupBy(GroupByConfig {
            rows: self.rows,
            cols: self.cols,
            agg: AggKind::Max,
            key_bits: 31,
            seed: self.seed,
        }))
    }

    fn encode(&self, src: &Tables<'a>, stream: usize, part: usize, row: usize, out: &mut Vec<u64>) {
        let p = &super::stream_table(src, stream).partitions()[part];
        out.push(encode_key(self.seed, &p.column(self.key_col).get(row)));
        out.push(encode_i64_32(p.column(self.val_col).as_int().expect("int agg col")[row]));
    }

    fn encode_part(
        &self,
        src: &Tables<'a>,
        stream: usize,
        part: usize,
        rows: usize,
        sink: &mut dyn FnMut(&[u64]),
    ) {
        // Hoisted twin of `encode`: key-column type dispatch once per
        // partition, aggregate column taken as a raw slice.
        let p = &super::stream_table(src, stream).partitions()[part];
        let vals = p.column(self.val_col).as_int().expect("int agg col");
        match p.column(self.key_col) {
            Column::Int(keys) => {
                for r in 0..rows {
                    sink(&[encode_ordered_i64(keys[r]), encode_i64_32(vals[r])]);
                }
            }
            Column::Str(keys) => {
                let h = HashFn::from_seed(self.seed);
                for r in 0..rows {
                    sink(&[h.hash_bytes(keys[r].as_bytes()) >> 1, encode_i64_32(vals[r])]);
                }
            }
        }
    }

    fn complete(&self, src: &Tables<'a>, survivors: &[Vec<Encoded>]) -> QueryOutput {
        // Aggregate by *borrowed* key — the owned `Value` keys (one clone
        // per group, not per survivor) only materialize in the final map.
        let parts = src.left.partitions();
        match parts.first().map(|p| p.column(self.key_col)) {
            Some(Column::Str(_)) => {
                let mut best: HashMap<&str, i64> = HashMap::new();
                for e in &survivors[0] {
                    let (pi, r) = e.id();
                    let p = &parts[pi];
                    let k = p.column(self.key_col).as_str().expect("str key col")[r].as_str();
                    let v = p.column(self.val_col).as_int().expect("int agg col")[r];
                    best.entry(k).and_modify(|m| *m = (*m).max(v)).or_insert(v);
                }
                QueryOutput::KeyedInts(
                    best.into_iter().map(|(k, v)| (Value::Str(k.to_string()), v)).collect(),
                )
            }
            _ => {
                let mut best: HashMap<i64, i64> = HashMap::new();
                for e in &survivors[0] {
                    let (pi, r) = e.id();
                    let p = &parts[pi];
                    let k = p.column(self.key_col).as_int().expect("int key col")[r];
                    let v = p.column(self.val_col).as_int().expect("int agg col")[r];
                    best.entry(k).and_modify(|m| *m = (*m).max(v)).or_insert(v);
                }
                QueryOutput::KeyedInts(best.into_iter().map(|(k, v)| (Value::Int(k), v)).collect())
            }
        }
    }
}

//! `SELECT * FROM left JOIN right ON …` — Bloom-filter pruning, §4.3
//! Example #4.
//!
//! Two streams (one per table), two pass structures:
//!
//! * [`JoinMode::TwoPass`]: both sides stream once to build the two Bloom
//!   filters, then stream again and are pruned against the *other* side's
//!   filter — [`PassPlan::BuildThenPrune`].
//! * [`JoinMode::SmallTableFirst`]: the small (left) side streams once,
//!   unpruned, building its filter on the way through; only the large
//!   side is pruned — [`PassPlan::FirstBuildsThenPruneSecond`], one less
//!   pass and a lower false-positive rate.
//!
//! The master runs an exact hash join on the survivors' true key values —
//! Bloom false positives contribute no pairs.

use super::encode_key;
use crate::engine::CheetahTuning;
use crate::executor::Tables;
use crate::ops;
use crate::query::QueryOutput;
use crate::value::Value;
use cheetah_core::{BloomKind, JoinConfig, JoinMode, PassPlan, PruningOperator, QuerySpec};
use cheetah_net::Encoded;

/// The JOIN operator.
pub struct JoinOp {
    left_key: usize,
    right_key: usize,
    m_bits: u64,
    kind: BloomKind,
    mode: JoinMode,
    seed: u64,
}

impl JoinOp {
    /// Join `left.left_key = right.right_key` with the cluster's filter
    /// tuning.
    pub fn new(left_key: usize, right_key: usize, tuning: &CheetahTuning) -> Self {
        Self {
            left_key,
            right_key,
            m_bits: tuning.join_m_bits,
            kind: tuning.join_kind,
            mode: tuning.join_mode,
            seed: tuning.seed,
        }
    }

    fn key_col(&self, stream: usize) -> usize {
        if stream == 0 {
            self.left_key
        } else {
            self.right_key
        }
    }
}

impl<'a> PruningOperator<Tables<'a>, Encoded> for JoinOp {
    type Output = QueryOutput;

    fn kind(&self) -> &'static str {
        "join"
    }

    fn spec(&self) -> cheetah_core::Result<QuerySpec> {
        Ok(QuerySpec::Join(JoinConfig {
            m_bits: self.m_bits,
            kind: self.kind,
            mode: self.mode,
            fid_a: 0,
            fid_b: 1,
            seed: self.seed,
        }))
    }

    fn streams(&self) -> usize {
        2
    }

    fn pass_plan(&self) -> PassPlan {
        match self.mode {
            JoinMode::TwoPass => PassPlan::BuildThenPrune,
            JoinMode::SmallTableFirst => PassPlan::FirstBuildsThenPruneSecond,
        }
    }

    fn encode(&self, src: &Tables<'a>, stream: usize, part: usize, row: usize, out: &mut Vec<u64>) {
        let p = &super::stream_table(src, stream).partitions()[part];
        out.push(encode_key(self.seed, &p.column(self.key_col(stream)).get(row)));
    }

    fn complete(&self, src: &Tables<'a>, survivors: &[Vec<Encoded>]) -> QueryOutput {
        // Master: exact hash join on the survivors' true key values —
        // Bloom false positives contribute no pairs.
        let keys_of = |stream: usize| -> Vec<Value> {
            survivors[stream]
                .iter()
                .map(|e| {
                    let (pi, r) = e.id();
                    super::stream_table(src, stream).partitions()[pi]
                        .column(self.key_col(stream))
                        .get(r)
                })
                .collect()
        };
        let lkeys = keys_of(0);
        let rkeys = keys_of(1);
        QueryOutput::JoinPairs(ops::hash_join_pairs(&lkeys, &rkeys))
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::Cluster;
    use crate::query::{DbQuery, QueryOutput};
    use crate::testutil::test_table;

    #[test]
    fn join_outputs_match() {
        let cluster = Cluster::default();
        let l = test_table(3_000, 3);
        let r = test_table(2_000, 2);
        let q = DbQuery::Join { left_key: 0, right_key: 0 };
        let base = cluster.run_baseline(&q, &l, Some(&r));
        let chee = cluster.run_cheetah(&q, &l, Some(&r)).unwrap();
        assert_eq!(base.output, chee.output);
        assert!(matches!(base.output, QueryOutput::JoinPairs(p) if p > 0));
    }

    #[test]
    fn small_table_join_matches_two_pass() {
        let mut cluster = Cluster::default();
        let small = test_table(500, 2);
        let large = test_table(5_000, 4);
        let q = DbQuery::Join { left_key: 0, right_key: 0 };
        let base = cluster.run_baseline(&q, &small, Some(&large));
        let two_pass = cluster.run_cheetah(&q, &small, Some(&large)).unwrap();
        cluster.tuning.join_mode = cheetah_core::JoinMode::SmallTableFirst;
        let small_first = cluster.run_cheetah(&q, &small, Some(&large)).unwrap();
        assert_eq!(base.output, two_pass.output);
        assert_eq!(base.output, small_first.output);
        // The optimization halves the wire passes.
        assert_eq!(two_pass.breakdown.passes, 2);
        assert_eq!(small_first.breakdown.passes, 1);
        assert!(small_first.breakdown.worker_wire_bytes < two_pass.breakdown.worker_wire_bytes);
    }
}

//! `SELECT TOP <n> … ORDER BY` — the randomized matrix of §5 Example #7.
//!
//! The switch's sampled threshold matrix forwards entries that may still
//! be in the top N; the master merges the survivors' true order values
//! into the exact answer.

use super::encode_i64_32;
use crate::engine::CheetahTuning;
use crate::executor::Tables;
use crate::ops;
use crate::query::QueryOutput;
use cheetah_core::{PruningOperator, QuerySpec, TopNRandConfig};
use cheetah_net::Encoded;

/// The randomized TOP-N operator.
pub struct TopNOp {
    col: usize,
    n: usize,
    cfg: TopNRandConfig,
}

impl TopNOp {
    /// TOP `n` by int column `col` with the cluster's matrix tuning.
    pub fn new(col: usize, n: usize, tuning: &CheetahTuning) -> Self {
        Self { col, n, cfg: tuning.topn }
    }
}

impl<'a> PruningOperator<Tables<'a>, Encoded> for TopNOp {
    type Output = QueryOutput;

    fn kind(&self) -> &'static str {
        "topn"
    }

    fn spec(&self) -> cheetah_core::Result<QuerySpec> {
        Ok(QuerySpec::TopNRand(self.cfg))
    }

    fn encode(&self, src: &Tables<'a>, stream: usize, part: usize, row: usize, out: &mut Vec<u64>) {
        let p = &super::stream_table(src, stream).partitions()[part];
        out.push(encode_i64_32(p.column(self.col).as_int().expect("int order col")[row]));
    }

    fn encode_part(
        &self,
        src: &Tables<'a>,
        stream: usize,
        part: usize,
        rows: usize,
        sink: &mut dyn FnMut(&[u64]),
    ) {
        // Hoisted twin of `encode`: the order column resolves to a raw
        // slice once per partition.
        let p = &super::stream_table(src, stream).partitions()[part];
        let vals = p.column(self.col).as_int().expect("int order col");
        for &v in &vals[..rows] {
            sink(&[encode_i64_32(v)]);
        }
    }

    fn complete(&self, src: &Tables<'a>, survivors: &[Vec<Encoded>]) -> QueryOutput {
        let vals: Vec<i64> = survivors[0]
            .iter()
            .map(|e| {
                let (pi, r) = e.id();
                src.left.partitions()[pi].column(self.col).as_int().expect("int order col")[r]
            })
            .collect();
        QueryOutput::top_values(ops::merge_topn(vec![vals], self.n))
    }
}

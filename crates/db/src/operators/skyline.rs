//! `SELECT * … SKYLINE OF <cols>` — §4.4 Example #6.
//!
//! The switch stores a bounded set of projection champions and forwards
//! entries not dominated by them; the master runs the exact pairwise
//! dominance check on the survivors' true coordinates.

use super::encode_i64_32;
use crate::engine::CheetahTuning;
use crate::executor::Tables;
use crate::ops;
use crate::query::QueryOutput;
use cheetah_core::{PruningOperator, QuerySpec, SkylineConfig, SkylinePolicy};
use cheetah_net::Encoded;

/// The SKYLINE operator.
pub struct SkylineOp<'q> {
    cols: &'q [usize],
    points: usize,
    policy: SkylinePolicy,
}

impl<'q> SkylineOp<'q> {
    /// Skyline over int columns `cols` with the cluster's tuning.
    pub fn new(cols: &'q [usize], tuning: &CheetahTuning) -> Self {
        Self { cols, points: tuning.skyline_points, policy: tuning.skyline_policy }
    }
}

impl<'a, 'q> PruningOperator<Tables<'a>, Encoded> for SkylineOp<'q> {
    type Output = QueryOutput;

    fn kind(&self) -> &'static str {
        "skyline"
    }

    fn spec(&self) -> cheetah_core::Result<QuerySpec> {
        Ok(QuerySpec::Skyline(SkylineConfig {
            dims: self.cols.len(),
            points: self.points,
            policy: self.policy,
            packed: true,
        }))
    }

    fn encode(&self, src: &Tables<'a>, stream: usize, part: usize, row: usize, out: &mut Vec<u64>) {
        let p = &super::stream_table(src, stream).partitions()[part];
        out.extend(
            self.cols
                .iter()
                .map(|&c| encode_i64_32(p.column(c).as_int().expect("int skyline col")[row])),
        );
    }

    fn encode_part(
        &self,
        src: &Tables<'a>,
        stream: usize,
        part: usize,
        rows: usize,
        sink: &mut dyn FnMut(&[u64]),
    ) {
        // Hoisted twin of `encode`: resolve every dimension column to a
        // raw slice once per partition.
        let p = &super::stream_table(src, stream).partitions()[part];
        let cols: Vec<&[i64]> =
            self.cols.iter().map(|&c| p.column(c).as_int().expect("int skyline col")).collect();
        let mut slots = vec![0u64; cols.len()];
        for r in 0..rows {
            for (out, col) in slots.iter_mut().zip(&cols) {
                *out = encode_i64_32(col[r]);
            }
            sink(&slots);
        }
    }

    fn complete(&self, src: &Tables<'a>, survivors: &[Vec<Encoded>]) -> QueryOutput {
        let pts: Vec<Vec<i64>> = survivors[0]
            .iter()
            .map(|e| {
                let (pi, r) = e.id();
                let p = &src.left.partitions()[pi];
                self.cols
                    .iter()
                    .map(|&c| p.column(c).as_int().expect("int skyline col")[r])
                    .collect()
            })
            .collect();
        QueryOutput::points(ops::skyline_of(&pts))
    }
}

//! `SELECT DISTINCT <col>` — §4.2 Example #2.
//!
//! The switch's eviction matrix forwards the first sighting of each key;
//! the master re-fetches the true column values of the survivors and
//! normalizes (duplicates from matrix evictions collapse there).

use super::encode_key;
use crate::engine::CheetahTuning;
use crate::executor::Tables;
use crate::query::QueryOutput;
use crate::table::Column;
use crate::value::{encode_ordered_i64, Value};
use cheetah_core::{DistinctConfig, PruningOperator, QuerySpec};
use cheetah_net::Encoded;
use cheetah_switch::HashFn;

/// The DISTINCT operator.
pub struct DistinctOp {
    col: usize,
    cfg: DistinctConfig,
    seed: u64,
}

impl DistinctOp {
    /// DISTINCT over column `col` with the cluster's matrix tuning.
    pub fn new(col: usize, tuning: &CheetahTuning) -> Self {
        Self { col, cfg: tuning.distinct, seed: tuning.seed }
    }
}

impl<'a> PruningOperator<Tables<'a>, Encoded> for DistinctOp {
    type Output = QueryOutput;

    fn kind(&self) -> &'static str {
        "distinct"
    }

    fn spec(&self) -> cheetah_core::Result<QuerySpec> {
        Ok(QuerySpec::Distinct(self.cfg))
    }

    fn encode(&self, src: &Tables<'a>, stream: usize, part: usize, row: usize, out: &mut Vec<u64>) {
        let p = &super::stream_table(src, stream).partitions()[part];
        out.push(encode_key(self.seed, &p.column(self.col).get(row)));
    }

    fn encode_part(
        &self,
        src: &Tables<'a>,
        stream: usize,
        part: usize,
        rows: usize,
        sink: &mut dyn FnMut(&[u64]),
    ) {
        // Hoisted twin of `encode`: one type dispatch per partition, no
        // per-row `Value` boxing (string keys hash in place).
        let p = &super::stream_table(src, stream).partitions()[part];
        match p.column(self.col) {
            Column::Int(v) => {
                for &x in &v[..rows] {
                    sink(&[encode_ordered_i64(x)]);
                }
            }
            Column::Str(v) => {
                let h = HashFn::from_seed(self.seed);
                for s in &v[..rows] {
                    sink(&[h.hash_bytes(s.as_bytes()) >> 1]);
                }
            }
        }
    }

    fn complete(&self, src: &Tables<'a>, survivors: &[Vec<Encoded>]) -> QueryOutput {
        let vals: Vec<Value> = survivors[0]
            .iter()
            .map(|e| {
                let (pi, r) = e.id();
                src.left.partitions()[pi].column(self.col).get(r)
            })
            .collect();
        QueryOutput::values(vals)
    }
}

//! `SELECT <key> … GROUP BY <key> HAVING SUM(<val>) > c` — Count-Min
//! candidates, §4.3 Example #5.
//!
//! Pass 1 streams every entry through the Count-Min sketch; an entry whose
//! key's estimated sum crosses the threshold is forwarded once as a
//! *candidate announcement*. Pass 2 re-streams only the entries of
//! announced keys ([`PassPlan::CandidateKeys`]); the master aggregates
//! them exactly by true key value and applies the threshold — sketch
//! overestimates only add candidates, never wrong sums.

use super::encode_key;
use crate::engine::CheetahTuning;
use crate::executor::Tables;
use crate::query::QueryOutput;
use crate::value::Value;
use cheetah_core::{planner, HavingAgg, HavingConfig, PassPlan, PruningOperator, QuerySpec};
use cheetah_net::Encoded;
use std::collections::HashMap;

/// The HAVING-SUM operator.
pub struct HavingSumOp {
    key_col: usize,
    val_col: usize,
    threshold: i64,
    counters: usize,
    seed: u64,
}

impl HavingSumOp {
    /// Keys whose `SUM(val_col)` exceeds `threshold`, with the cluster's
    /// sketch tuning.
    pub fn new(key_col: usize, val_col: usize, threshold: i64, tuning: &CheetahTuning) -> Self {
        Self { key_col, val_col, threshold, counters: tuning.having_counters, seed: tuning.seed }
    }
}

impl<'a> PruningOperator<Tables<'a>, Encoded> for HavingSumOp {
    type Output = QueryOutput;

    fn kind(&self) -> &'static str {
        "having-sum"
    }

    fn spec(&self) -> cheetah_core::Result<QuerySpec> {
        // `SUM < c` is future work in the paper; the planner rejects it.
        planner::validate_having_direction(false)?;
        Ok(QuerySpec::Having(HavingConfig {
            cm_rows: 3,
            cm_counters: self.counters,
            threshold: self.threshold.max(0) as u64,
            agg: HavingAgg::Sum,
            dedup_rows: 1024,
            dedup_cols: 2,
            seed: self.seed,
        }))
    }

    fn pass_plan(&self) -> PassPlan {
        PassPlan::CandidateKeys { key_slot: 0 }
    }

    fn encode(&self, src: &Tables<'a>, stream: usize, part: usize, row: usize, out: &mut Vec<u64>) {
        let p = &src.stream(stream).partitions()[part];
        out.push(encode_key(self.seed, &p.column(self.key_col).get(row)));
        out.push(p.column(self.val_col).as_int().expect("int sum col")[row].max(0) as u64);
    }

    fn complete(&self, src: &Tables<'a>, survivors: &[Vec<Encoded>]) -> QueryOutput {
        let mut sums: HashMap<Value, i64> = HashMap::new();
        for e in &survivors[0] {
            let (pi, r) = e.id();
            let p = &src.left.partitions()[pi];
            let k = p.column(self.key_col).get(r);
            *sums.entry(k).or_insert(0) += p.column(self.val_col).as_int().expect("int sum col")[r];
        }
        QueryOutput::KeyedInts(sums.into_iter().filter(|(_, s)| *s > self.threshold).collect())
    }
}

//! `SELECT <key> … GROUP BY <key> HAVING SUM(<val>) > c` — Count-Min
//! candidates, §4.3 Example #5.
//!
//! Pass 1 streams every entry through the Count-Min sketch; an entry whose
//! key's estimated sum crosses the threshold is forwarded once as a
//! *candidate announcement*. Pass 2 re-streams only the entries of
//! announced keys ([`PassPlan::CandidateKeys`]); the master aggregates
//! them exactly by true key value and applies the threshold — sketch
//! overestimates only add candidates, never wrong sums.

use super::encode_key;
use crate::engine::CheetahTuning;
use crate::executor::Tables;
use crate::query::QueryOutput;
use crate::value::Value;
use cheetah_core::{planner, HavingAgg, HavingConfig, PassPlan, PruningOperator, QuerySpec};
use cheetah_net::Encoded;
use std::collections::HashMap;

/// The HAVING-SUM operator.
pub struct HavingSumOp {
    key_col: usize,
    val_col: usize,
    threshold: i64,
    counters: usize,
    seed: u64,
}

impl HavingSumOp {
    /// Keys whose `SUM(val_col)` exceeds `threshold`, with the cluster's
    /// sketch tuning.
    pub fn new(key_col: usize, val_col: usize, threshold: i64, tuning: &CheetahTuning) -> Self {
        Self { key_col, val_col, threshold, counters: tuning.having_counters, seed: tuning.seed }
    }
}

impl<'a> PruningOperator<Tables<'a>, Encoded> for HavingSumOp {
    type Output = QueryOutput;

    fn kind(&self) -> &'static str {
        "having-sum"
    }

    fn spec(&self) -> cheetah_core::Result<QuerySpec> {
        // `SUM < c` is future work in the paper; the planner rejects it.
        planner::validate_having_direction(false)?;
        // The sketch sums clamped non-negative values against an unsigned
        // threshold, so `c < 0` cannot be decided on the switch: a key
        // whose true (negative) sum exceeds `c` would estimate 0 ≤ 0 and
        // never be announced — a silent contract violation. Reject it
        // loudly instead.
        if self.threshold < 0 {
            return Err(cheetah_switch::SwitchError::UnsupportedOp {
                op: "HAVING SUM > c with negative c (sketch sums are unsigned)",
            }
            .into());
        }
        Ok(QuerySpec::Having(HavingConfig {
            cm_rows: 3,
            cm_counters: self.counters,
            threshold: self.threshold as u64,
            agg: HavingAgg::Sum,
            dedup_rows: 1024,
            dedup_cols: 2,
            seed: self.seed,
        }))
    }

    fn pass_plan(&self) -> PassPlan {
        PassPlan::CandidateKeys { key_slot: 0 }
    }

    fn encode(&self, src: &Tables<'a>, stream: usize, part: usize, row: usize, out: &mut Vec<u64>) {
        let p = &super::stream_table(src, stream).partitions()[part];
        out.push(encode_key(self.seed, &p.column(self.key_col).get(row)));
        out.push(p.column(self.val_col).as_int().expect("int sum col")[row].max(0) as u64);
    }

    fn complete(&self, src: &Tables<'a>, survivors: &[Vec<Encoded>]) -> QueryOutput {
        let mut sums: HashMap<Value, i64> = HashMap::new();
        for e in &survivors[0] {
            let (pi, r) = e.id();
            let p = &src.left.partitions()[pi];
            let k = p.column(self.key_col).get(r);
            *sums.entry(k).or_insert(0) += p.column(self.val_col).as_int().expect("int sum col")[r];
        }
        QueryOutput::KeyedInts(sums.into_iter().filter(|(_, s)| *s > self.threshold).collect())
    }
}

#[cfg(test)]
mod tests {
    use crate::engine::Cluster;
    use crate::query::DbQuery;
    use crate::testutil::test_table;
    use cheetah_core::Error;
    use cheetah_switch::SwitchError;

    #[test]
    fn negative_threshold_is_a_typed_error_not_a_wrong_answer() {
        // A negative threshold cannot be decided by the unsigned sketch;
        // the switch path must refuse rather than silently drop keys the
        // baseline would return.
        let cluster = Cluster::default();
        let t = test_table(200, 2);
        let q = DbQuery::HavingSum { key_col: 0, val_col: 1, threshold: -100 };
        let err = cluster.run_cheetah(&q, &t, None).unwrap_err();
        assert!(
            matches!(err, Error::Switch(SwitchError::UnsupportedOp { .. })),
            "unexpected error: {err:?}"
        );
        // The baseline path still answers (its operators are signed).
        let base = cluster.run_baseline(&q, &t, None);
        assert!(base.output.cardinality() > 0);
    }

    #[test]
    fn zero_threshold_is_still_offloadable() {
        let cluster = Cluster::default();
        let t = test_table(500, 2);
        let q = DbQuery::HavingSum { key_col: 0, val_col: 1, threshold: 0 };
        let base = cluster.run_baseline(&q, &t, None);
        let chee = cluster.run_cheetah(&q, &t, None).unwrap();
        assert_eq!(base.output, chee.output);
    }
}

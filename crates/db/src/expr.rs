//! Predicates for WHERE clauses, including the string `LIKE` the switch
//! cannot evaluate (§4.1's running example).

use serde::{Deserialize, Serialize};

/// Integer comparison operators (signed SQL semantics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IntCmp {
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `=`
    Eq,
    /// `<>`
    Ne,
}

impl IntCmp {
    /// Evaluate.
    #[inline]
    pub fn eval(self, v: i64, lit: i64) -> bool {
        match self {
            IntCmp::Gt => v > lit,
            IntCmp::Ge => v >= lit,
            IntCmp::Lt => v < lit,
            IntCmp::Le => v <= lit,
            IntCmp::Eq => v == lit,
            IntCmp::Ne => v != lit,
        }
    }
}

/// A SQL `LIKE` pattern with `%` wildcards (no `_` support — the paper's
/// example only uses `%`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LikePattern {
    segments: Vec<String>,
    anchored_start: bool,
    anchored_end: bool,
}

impl LikePattern {
    /// Parse a pattern like `"e%s"`, `"%chrome%"`, `"http://%"`.
    pub fn parse(pattern: &str) -> Self {
        let anchored_start = !pattern.starts_with('%');
        let anchored_end = !pattern.ends_with('%');
        let segments = pattern.split('%').filter(|s| !s.is_empty()).map(str::to_string).collect();
        Self { segments, anchored_start, anchored_end }
    }

    /// Does `text` match the pattern?
    pub fn matches(&self, text: &str) -> bool {
        if self.segments.is_empty() {
            // Pure "%...%" of wildcards matches anything; a fully empty
            // pattern matches only the empty string.
            return !self.anchored_start && !self.anchored_end || text.is_empty();
        }
        let mut pos = 0usize;
        for (i, seg) in self.segments.iter().enumerate() {
            let first = i == 0;
            let last = i == self.segments.len() - 1;
            if first && self.anchored_start {
                if !text[pos..].starts_with(seg.as_str()) {
                    return false;
                }
                pos += seg.len();
            } else if last && self.anchored_end {
                let rest = &text[pos..];
                if !rest.ends_with(seg.as_str()) || rest.len() < seg.len() {
                    return false;
                }
                pos = text.len();
            } else {
                match text[pos..].find(seg.as_str()) {
                    Some(at) => pos += at + seg.len(),
                    None => return false,
                }
            }
        }
        true
    }
}

/// A WHERE-clause predicate tree (monotone: And/Or over atoms; negations
/// are pushed into the comparison operators, as §4.1 assumes).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum DbPredicate {
    /// Integer comparison against a literal.
    CmpInt {
        /// Column index in the table schema.
        col: usize,
        /// Comparison operator.
        op: IntCmp,
        /// Literal.
        lit: i64,
    },
    /// String LIKE — not switch-evaluable.
    Like {
        /// Column index in the table schema.
        col: usize,
        /// The pattern.
        pattern: LikePattern,
    },
    /// Conjunction.
    And(Vec<DbPredicate>),
    /// Disjunction.
    Or(Vec<DbPredicate>),
}

impl DbPredicate {
    /// All column indices the predicate reads.
    pub fn columns(&self) -> Vec<usize> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns(&self, out: &mut Vec<usize>) {
        match self {
            DbPredicate::CmpInt { col, .. } | DbPredicate::Like { col, .. } => out.push(*col),
            DbPredicate::And(xs) | DbPredicate::Or(xs) => {
                for x in xs {
                    x.collect_columns(out);
                }
            }
        }
    }

    /// Does the predicate contain any non-switch-evaluable atom?
    pub fn has_external_atoms(&self) -> bool {
        match self {
            DbPredicate::CmpInt { .. } => false,
            DbPredicate::Like { .. } => true,
            DbPredicate::And(xs) | DbPredicate::Or(xs) => {
                xs.iter().any(DbPredicate::has_external_atoms)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn int_cmp_ops() {
        assert!(IntCmp::Gt.eval(5, 4));
        assert!(!IntCmp::Gt.eval(4, 4));
        assert!(IntCmp::Ge.eval(4, 4));
        assert!(IntCmp::Lt.eval(-5, 0), "signed semantics");
        assert!(IntCmp::Le.eval(0, 0));
        assert!(IntCmp::Eq.eval(7, 7));
        assert!(IntCmp::Ne.eval(7, 8));
    }

    #[test]
    fn like_paper_example() {
        // name LIKE 'e%s' — starts with e, ends with s.
        let p = LikePattern::parse("e%s");
        assert!(p.matches("eggs"));
        assert!(p.matches("es"));
        assert!(!p.matches("eggo"));
        assert!(!p.matches("legs"));
        assert!(!p.matches("e"), "single char cannot satisfy both anchors");
    }

    #[test]
    fn like_contains() {
        let p = LikePattern::parse("%chrome%");
        assert!(p.matches("google chrome 99"));
        assert!(!p.matches("firefox"));
    }

    #[test]
    fn like_prefix_suffix() {
        assert!(LikePattern::parse("http://%").matches("http://a.example"));
        assert!(!LikePattern::parse("http://%").matches("https://a.example"));
        assert!(LikePattern::parse("%.html").matches("index.html"));
        assert!(!LikePattern::parse("%.html").matches("index.htm"));
    }

    #[test]
    fn like_multi_segment() {
        let p = LikePattern::parse("a%b%c");
        assert!(p.matches("aXbYc"));
        assert!(p.matches("abc"));
        assert!(!p.matches("acb"));
        assert!(!p.matches("aXbY"));
    }

    #[test]
    fn like_all_wildcards() {
        assert!(LikePattern::parse("%").matches("anything"));
        assert!(LikePattern::parse("%").matches(""));
        assert!(LikePattern::parse("").matches(""));
        assert!(!LikePattern::parse("").matches("x"));
    }

    #[test]
    fn predicate_columns_and_externals() {
        let p = DbPredicate::Or(vec![
            DbPredicate::CmpInt { col: 2, op: IntCmp::Gt, lit: 5 },
            DbPredicate::And(vec![
                DbPredicate::CmpInt { col: 1, op: IntCmp::Gt, lit: 4 },
                DbPredicate::Like { col: 0, pattern: LikePattern::parse("e%s") },
            ]),
        ]);
        assert_eq!(p.columns(), vec![0, 1, 2]);
        assert!(p.has_external_atoms());
        let q = DbPredicate::CmpInt { col: 0, op: IntCmp::Lt, lit: 10 };
        assert!(!q.has_external_atoms());
    }
}

//! The measured baseline ("Spark") execution path.
//!
//! Workers compute partial results over their partitions in parallel
//! threads (one task per partition, like Spark's task-per-partition
//! model), ship the compressed partials to the master, and the master
//! merges. Every operator here does real work on real data — the Figure
//! 5/6/8 experiments time these loops — while transfer sizes feed the
//! byte-level model in `cheetah-net`.

use crate::engine::{Cluster, ExecBreakdown, SparkRun};
use crate::ops;
use crate::query::{DbQuery, QueryOutput};
use crate::table::{Partition, Table};
use crate::value::Value;
use std::time::Instant;

/// Run partition tasks in parallel (one thread per partition, like Spark's
/// task-per-partition model) and report the slowest task's duration.
fn parallel_partials<T: Send>(
    parts: &[Partition],
    f: impl Fn(&Partition) -> T + Sync,
) -> (Vec<T>, f64) {
    let results: Vec<(T, f64)> = std::thread::scope(|s| {
        let handles: Vec<_> = parts
            .iter()
            .map(|p| {
                s.spawn(|| {
                    let t0 = Instant::now();
                    let out = f(p);
                    (out, t0.elapsed().as_secs_f64())
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("worker panicked")).collect()
    });
    let max = results.iter().map(|(_, d)| *d).fold(0.0f64, f64::max);
    (results.into_iter().map(|(t, _)| t).collect(), max)
}

impl Cluster {
    /// The measured engine run without the Spark-overhead calibration —
    /// what a native Rust engine would cost.
    pub fn run_baseline_measured(
        &self,
        q: &DbQuery,
        left: &Table,
        right: Option<&Table>,
    ) -> SparkRun {
        match q {
            DbQuery::FilterCount { pred } => {
                let (partials, wt) =
                    parallel_partials(left.partitions(), |p| ops::partial_filter_count(pred, p));
                let t0 = Instant::now();
                let total: u64 = partials.iter().sum();
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(
                    QueryOutput::Count(total),
                    wt,
                    mt,
                    partials.len() as u64 * 8,
                    partials.len() as u64,
                )
            }
            DbQuery::Distinct { col } => {
                let (partials, wt) =
                    parallel_partials(left.partitions(), |p| ops::partial_distinct(*col, p));
                let bytes: u64 =
                    partials.iter().flat_map(|s| s.iter().map(Value::wire_bytes)).sum();
                let entries: u64 = partials.iter().map(|s| s.len() as u64).sum();
                let t0 = Instant::now();
                let mut all: Vec<Value> = Vec::new();
                for s in partials {
                    all.extend(s);
                }
                let out = QueryOutput::values(all);
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(out, wt, mt, bytes, entries)
            }
            DbQuery::Skyline { cols } => {
                let (partials, wt) =
                    parallel_partials(left.partitions(), |p| ops::partial_skyline(cols, p));
                let entries: u64 = partials.iter().map(|s| s.len() as u64).sum();
                let bytes = entries * 8 * cols.len() as u64;
                let t0 = Instant::now();
                let all: Vec<Vec<i64>> = partials.into_iter().flatten().collect();
                let out = QueryOutput::points(ops::skyline_of(&all));
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(out, wt, mt, bytes, entries)
            }
            DbQuery::TopN { order_col, n } => {
                let (partials, wt) =
                    parallel_partials(left.partitions(), |p| ops::partial_topn(*order_col, *n, p));
                let entries: u64 = partials.iter().map(|s| s.len() as u64).sum();
                let bytes = entries * 8;
                let t0 = Instant::now();
                let out = QueryOutput::top_values(ops::merge_topn(partials, *n));
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(out, wt, mt, bytes, entries)
            }
            DbQuery::GroupByMax { key_col, val_col } => {
                let (partials, wt) = parallel_partials(left.partitions(), |p| {
                    ops::partial_groupby_max(*key_col, *val_col, p)
                });
                let entries: u64 = partials.iter().map(|m| m.len() as u64).sum();
                let bytes: u64 =
                    partials.iter().flat_map(|m| m.keys().map(|k| k.wire_bytes() + 8)).sum();
                let t0 = Instant::now();
                let merged = ops::merge_groupby_max(partials);
                let out = QueryOutput::KeyedInts(merged.into_iter().collect());
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(out, wt, mt, bytes, entries)
            }
            DbQuery::Join { left_key, right_key } => {
                let right = right.expect("join needs a right table");
                // Late-materialization style: workers ship the key columns;
                // the master builds and probes.
                let (lk, wt1) =
                    parallel_partials(left.partitions(), |p| ops::extract_keys(*left_key, p));
                let (rk, wt2) =
                    parallel_partials(right.partitions(), |p| ops::extract_keys(*right_key, p));
                let lkeys: Vec<Value> = lk.into_iter().flatten().collect();
                let rkeys: Vec<Value> = rk.into_iter().flatten().collect();
                let bytes: u64 = lkeys.iter().chain(&rkeys).map(Value::wire_bytes).sum();
                let entries = (lkeys.len() + rkeys.len()) as u64;
                let t0 = Instant::now();
                let pairs = ops::hash_join_pairs(&lkeys, &rkeys);
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(QueryOutput::JoinPairs(pairs), wt1 + wt2, mt, bytes, entries)
            }
            DbQuery::HavingSum { key_col, val_col, threshold } => {
                let (partials, wt) = parallel_partials(left.partitions(), |p| {
                    ops::partial_sum_by_key(*key_col, *val_col, p)
                });
                let entries: u64 = partials.iter().map(|m| m.len() as u64).sum();
                let bytes: u64 =
                    partials.iter().flat_map(|m| m.keys().map(|k| k.wire_bytes() + 8)).sum();
                let t0 = Instant::now();
                let sums = ops::merge_sums(partials);
                let out = QueryOutput::KeyedInts(
                    sums.into_iter().filter(|(_, s)| s > threshold).collect(),
                );
                let mt = t0.elapsed().as_secs_f64();
                self.baseline_run(out, wt, mt, bytes, entries)
            }
        }
    }

    fn baseline_run(
        &self,
        output: QueryOutput,
        worker_seconds: f64,
        master_seconds: f64,
        raw_bytes: u64,
        entries: u64,
    ) -> SparkRun {
        let compressed = (raw_bytes as f64 * self.baseline_compression) as u64;
        SparkRun {
            output,
            breakdown: ExecBreakdown {
                worker_seconds,
                master_seconds,
                // All partials converge on the master's link, which
                // therefore dominates any single worker's uplink; the
                // network model takes the max of the two.
                worker_wire_bytes: 0,
                master_wire_bytes: compressed,
                entries_to_master: entries,
                passes: 1,
                shards: 1,
                master_ingest_seconds: 0.0,
                plan: None,
                overlap_seconds: 0.0,
                replans: 0,
                // The baseline never touches the switch; the field only
                // distinguishes Cheetah-path engines.
                backend: cheetah_net::ExecBackend::Interpreted,
                ..ExecBreakdown::default()
            },
        }
    }
}

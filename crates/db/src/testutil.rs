//! Shared fixtures for the engine/executor/operator test modules.

use crate::expr::{DbPredicate, IntCmp};
use crate::query::DbQuery;
use crate::table::{Table, TableBuilder};
use crate::value::{DataType, Value};

/// A small deterministic table: key strings, two int columns.
pub(crate) fn test_table(rows: usize, partitions: usize) -> Table {
    let mut b = TableBuilder::new(
        "t",
        vec![
            ("agent".into(), DataType::Str),
            ("revenue".into(), DataType::Int),
            ("duration".into(), DataType::Int),
        ],
        rows.div_ceil(partitions),
    );
    let mut x: u64 = 42;
    for _ in 0..rows {
        x = cheetah_switch::hash::mix64(x);
        let agent = format!("agent-{}", x % 50);
        x = cheetah_switch::hash::mix64(x);
        let revenue = (x % 10_000) as i64;
        x = cheetah_switch::hash::mix64(x);
        let duration = (x % 100) as i64;
        b.push_row(vec![Value::Str(agent), Value::Int(revenue), Value::Int(duration)]);
    }
    b.build()
}

/// Every unary query shape over [`test_table`]'s schema.
pub(crate) fn all_queries() -> Vec<DbQuery> {
    vec![
        DbQuery::FilterCount { pred: DbPredicate::CmpInt { col: 2, op: IntCmp::Lt, lit: 10 } },
        DbQuery::Distinct { col: 0 },
        DbQuery::TopN { order_col: 1, n: 25 },
        DbQuery::GroupByMax { key_col: 0, val_col: 1 },
        DbQuery::Skyline { cols: vec![1, 2] },
        DbQuery::HavingSum { key_col: 0, val_col: 1, threshold: 50_000 },
    ]
}

//! The adaptive shard planner: sample the routing keys, estimate skew
//! and size, emit a concrete [`ShardPlan`].
//!
//! The `shards` sweep shows what a fixed spec costs: under key skew a
//! fixed range partitioner piles the hot keys onto one shard and the
//! whole run serializes behind it, while a fixed shard count either
//! wastes workers on small inputs or starves large ones. The planner
//! replaces both hand-picked choices with one sampling pass over the
//! per-query routing keys (the same keys [`Cluster::run_cheetah_sharded`]
//! routes by — key extraction lives *here*, in one place, and the sharded
//! layer consumes it):
//!
//! 1. **Sample** — a seeded reservoir ([`KeySampler`]) over every
//!    stream's routing keys, plus a KMV distinct sketch and the top-key
//!    mass.
//! 2. **Choose the shard count** — walk the
//!    [`MasterIngestModel::planning_latency`] fan-in curve: each
//!    candidate count is charged the hottest shard's share of the rows
//!    at the CWorker send rate (worker phase) plus the modelled
//!    survivor-stream ingest and per-shard merge overhead (master
//!    phase); stop adding shards where the modelled merge cost eats the
//!    pruning win.
//! 3. **Choose the partitioner** — fit range boundaries to the sampled
//!    quantiles; keep them when the fitted plan's max sampled shard load
//!    stays within [`PlannerConfig::range_load_factor`] (default 2×) of
//!    hash on the same sample, fall back to hash when skew concentrates.
//!
//! The emitted [`PlanReport`] records
//! every estimate and modelled cost the decision read, so tests and
//! humans audit the choice instead of trusting it. Plans are
//! deterministic: same seed + same tables ⇒ identical [`ShardPlan`].

use crate::engine::Cluster;
use crate::executor::Tables;
use crate::operators::encode_key;
use crate::query::DbQuery;
use crate::sharded::{ShardSpec, ShardedRun};
use crate::table::{Partition, Table, TableBuilder};
use crate::value::encode_ordered_i64;
use cheetah_core::plan::{
    fit_boundaries, max_load_fraction, KeySampler, PlanDecision, PlanReport, ShardCostPoint,
    ShardPlan,
};
use cheetah_core::{ShardPartitioner, Sharder};
use cheetah_net::MasterIngestModel;
use cheetah_switch::hash::mix64;

/// Tuning of the sample-driven shard planner.
#[derive(Debug, Clone, PartialEq)]
pub struct PlannerConfig {
    /// Reservoir capacity: how many routing keys the quantile fit and
    /// the load evaluation see.
    pub sample_size: usize,
    /// Largest worker count the fan-in walk considers.
    pub max_shards: usize,
    /// Fitted range is kept while its max sampled shard load stays
    /// within this factor of hash's on the same sample (the planner
    /// contract's 2× bound).
    pub range_load_factor: f64,
    /// Fixed per-shard master-side cost (planning one switch program,
    /// merging one more output) charged by the shard-count model.
    pub per_shard_overhead_seconds: f64,
    /// Ingest model queried for the fan-in curve and applied to the
    /// planned run's survivor streams.
    pub ingest: MasterIngestModel,
    /// The measurements a [`PlannerConfig::calibrate`] run recorded, when
    /// this config's constants came from a probe instead of the
    /// hard-coded defaults.
    pub calibration: Option<Calibration>,
    /// Measured survivor volume (`entries_to_master`) from a previous run
    /// of the same query, when a [`PathChooser`] (or caller) observed one.
    /// Overrides the distinct-estimate proxy in the merge model — crucial
    /// for high-fanout JOINs, where survivors are matching *rows*, not
    /// distinct keys, and the proxy under-prices the merge badly.
    pub survivor_hint: Option<u64>,
}

impl Default for PlannerConfig {
    fn default() -> Self {
        Self {
            sample_size: 1024,
            max_shards: 16,
            range_load_factor: 2.0,
            per_shard_overhead_seconds: 300e-6,
            ingest: MasterIngestModel::default_rack(),
            calibration: None,
            survivor_hint: None,
        }
    }
}

/// What one [`PlannerConfig::calibrate`] probe measured.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Calibration {
    /// Rows the throughput probe serialized.
    pub probe_rows: u64,
    /// Measured worker serialize rate (entries/second), installed as the
    /// cost model's arrival rate.
    pub measured_arrival_rate: f64,
    /// Measured fixed cost of standing up one more shard (planning +
    /// running one degenerate switch program), installed as
    /// `per_shard_overhead_seconds`.
    pub measured_overhead_seconds: f64,
}

impl PlannerConfig {
    /// Replace the hard-coded cost constants with measured ones from a
    /// short calibration run over (a slice of) the actual input:
    ///
    /// * **per-shard overhead** — the wall time of a complete executor
    ///   run over a tiny slice, which is dominated by exactly the fixed
    ///   work every additional shard pays (planning its own switch
    ///   program, standing up its pipeline, one more merge input);
    /// * **arrival rate** — the measured CWorker serialize rate over a
    ///   larger probe slice, replacing the nominal 10 M entries/s the
    ///   default model assumes.
    ///
    /// Best-effort: an empty input or a probe failure returns the config
    /// unchanged. The probe is seeded data (the table's own first rows),
    /// but the measurements are wall-clock — calibrated plans trade the
    /// planner's bit-determinism for a model that matches this machine.
    pub fn calibrate(mut self, cluster: &Cluster, tables: &Tables<'_>) -> PlannerConfig {
        const PROBE_ROWS: usize = 512;
        const OVERHEAD_ROWS: usize = 32;
        const REPS: usize = 3;
        let probe = probe_slice(tables.left, PROBE_ROWS);
        if probe.rows() == 0 {
            return self;
        }
        let q = DbQuery::Distinct { col: 0 };
        // Fixed cost: the fastest of a few tiny complete runs.
        let tiny = probe_slice(tables.left, OVERHEAD_ROWS);
        let mut overhead = f64::INFINITY;
        for _ in 0..REPS {
            let t0 = std::time::Instant::now();
            if cluster.run_cheetah(&q, &tiny, None).is_err() {
                return self;
            }
            overhead = overhead.min(t0.elapsed().as_secs_f64());
        }
        // Serialize rate: rows over the measured worker phase.
        let mut worker_seconds = f64::INFINITY;
        for _ in 0..REPS {
            match cluster.run_cheetah(&q, &probe, None) {
                Ok(run) => worker_seconds = worker_seconds.min(run.breakdown.worker_seconds),
                Err(_) => return self,
            }
        }
        let rate = probe.rows() as f64 / worker_seconds.max(1e-9);
        let calibration = Calibration {
            probe_rows: probe.rows() as u64,
            measured_arrival_rate: rate,
            measured_overhead_seconds: overhead,
        };
        self.per_shard_overhead_seconds = overhead.max(1e-9);
        self.ingest.arrival_rate = rate.max(1.0);
        self.calibration = Some(calibration);
        self
    }
}

/// The first `rows` rows of `table` as one single-partition table — the
/// calibration probe's input.
fn probe_slice(table: &Table, rows: usize) -> Table {
    let take = table.rows().min(rows);
    // `take + 1` keeps the builder's automatic partition cadence
    // unreachable: the probe is exactly one partition.
    let mut b = TableBuilder::new(table.name(), table.fields().to_vec(), take + 1);
    let mut left = take;
    'outer: for p in table.partitions() {
        for r in 0..p.rows() {
            if left == 0 {
                break 'outer;
            }
            b.push_row(p.row(r));
            left -= 1;
        }
    }
    b.build()
}

/// The sample-driven shard planner.
///
/// # Worked example
///
/// A skewed table: 4000 rows, 90 % of them under ten hot keys. The
/// planner samples the GROUP BY routing keys, reads the skew, and picks
/// a concrete plan whose report explains the choice:
///
/// ```
/// use cheetah_db::{Cluster, DataType, DbQuery, ShardPlanner, TableBuilder, Value};
///
/// let mut b = TableBuilder::new(
///     "visits",
///     vec![("agent".into(), DataType::Str), ("ms".into(), DataType::Int)],
///     500,
/// );
/// for i in 0..4000i64 {
///     let agent = if i % 10 < 9 { format!("hot-{}", i % 10) } else { format!("cold-{i}") };
///     b.push_row(vec![Value::Str(agent), Value::Int(i % 997)]);
/// }
/// let table = b.build();
///
/// let cluster = Cluster::default();
/// let q = DbQuery::GroupByMax { key_col: 0, val_col: 1 };
/// let planner = ShardPlanner::default();
/// let plan = planner.plan(&q, &table, None, cluster.tuning.seed);
///
/// // The report carries every estimate the decision read…
/// assert_eq!(plan.report.rows, 4000);
/// assert!(plan.report.distinct_estimate > 10.0);
/// assert!(plan.shards() >= 1 && plan.shards() <= 16);
/// println!("{}", plan.report.reason);
///
/// // …and the planned run completes bit-identically to the baseline.
/// let base = cluster.run_baseline(&q, &table, None);
/// let planned = cluster.run_cheetah_planned(&q, &table, None, &planner).unwrap();
/// assert_eq!(base.output, planned.output);
/// ```
#[derive(Debug, Clone, Default)]
pub struct ShardPlanner {
    /// The planner's tuning.
    pub cfg: PlannerConfig,
}

impl ShardPlanner {
    /// A planner with the given tuning.
    pub fn new(cfg: PlannerConfig) -> Self {
        Self { cfg }
    }

    /// Plan the sharded execution of `q` over the given tables: sample
    /// the per-query routing keys of every stream and emit the plan.
    pub fn plan(&self, q: &DbQuery, left: &Table, right: Option<&Table>, seed: u64) -> ShardPlan {
        let left_keys = routing_keys(q, 0, left, seed);
        let right_keys = right.map(|r| routing_keys(q, 1, r, seed));
        let slices: Vec<&[u64]> =
            std::iter::once(left_keys.as_slice()).chain(right_keys.as_deref()).collect();
        self.plan_from_keys(&slices, seed)
    }

    /// Plan from precomputed routing-key streams (what
    /// [`Cluster::run_cheetah_planned`] and the streamed runtime use so
    /// the keys are extracted once for sampling *and* routing).
    pub fn plan_from_keys(&self, key_slices: &[&[u64]], seed: u64) -> ShardPlan {
        let mut sampler = KeySampler::new(self.cfg.sample_size, seed);
        for &stream in key_slices {
            for &k in stream {
                sampler.offer(k);
            }
        }
        let stats = sampler.finish();

        if stats.rows == 0 {
            return self.trivial_plan(stats, seed, "empty input: any routing is vacuous");
        }
        if stats.all_keys_equal() {
            // Key-aligned routing pins a single key to one shard; extra
            // workers would only idle and add merge overhead.
            return self.trivial_plan(
                stats,
                seed,
                "all sampled routing keys are equal: no partitioner can spread them",
            );
        }

        // Survivor volume for the merge model. A measured hint (fed back
        // by a [`PathChooser`] from an observed `entries_to_master`) wins
        // outright — it is reality, and deliberately NOT clamped to
        // `rows`: a two-pass JOIN delivers matching rows from *both*
        // streams, which the per-stream row count would truncate. Absent
        // a measurement, fall back to the proxy of roughly one survivor
        // per distinct routing key (keyed queries forward per-key
        // champions; scans route by unique row-id hashes, making this
        // `rows` — conservatively assuming nothing is pruned).
        let survivors = match self.cfg.survivor_hint {
            Some(measured) => measured.max(1),
            None => (stats.distinct_estimate.round() as u64).clamp(1, stats.rows),
        };

        // Walk the fan-in curve: per candidate count, the hottest shard's
        // share of the rows at the CWorker send rate, plus modelled
        // ingest and per-shard merge overhead.
        let mut curve = Vec::with_capacity(self.cfg.max_shards);
        let mut per_count = Vec::with_capacity(self.cfg.max_shards);
        for n in 1..=self.cfg.max_shards.max(1) {
            let choice = self.partitioner_at(&stats.sample, n, seed);
            let worker_seconds =
                stats.rows as f64 * choice.load / self.cfg.ingest.arrival_rate.max(1.0);
            let merge_seconds = self.cfg.ingest.planning_latency(n, survivors)
                + n as f64 * self.cfg.per_shard_overhead_seconds;
            curve.push(ShardCostPoint { shards: n, worker_seconds, merge_seconds });
            per_count.push(choice);
        }
        let best = curve
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| a.total().partial_cmp(&b.total()).expect("finite costs"))
            .map(|(i, _)| i)
            .expect("at least one candidate");
        let chosen = per_count.swap_remove(best);
        let shards = best + 1;

        // The first candidate *past the chosen count* whose modelled
        // completion rises again — where merge cost starts eating the
        // pruning win (absent when the chosen count is the axis maximum).
        let turn =
            curve[best + 1..].iter().find(|p| p.total() > curve[best].total()).map(|p| p.shards);
        let reason = format!(
            "chose {} × {}: sampled {}/{} keys, ~{:.0} distinct, top-key mass {:.2}; \
             fitted-range sample load {:.2} vs hash {:.2} (factor {}); modelled completion \
             {:.2} ms{}",
            shards,
            chosen.partitioner.name(),
            stats.sample.len(),
            stats.rows,
            stats.distinct_estimate,
            stats.top_key_mass,
            chosen.range_load,
            chosen.hash_load,
            self.cfg.range_load_factor,
            curve[best].total() * 1e3,
            match turn {
                Some(n) => format!(", merge cost eats the win from {n} shards on"),
                None => String::new(),
            },
        );
        ShardPlan {
            sharder: chosen.sharder,
            report: PlanReport {
                rows: stats.rows,
                sample_len: stats.sample.len(),
                distinct_estimate: stats.distinct_estimate,
                top_key_mass: stats.top_key_mass,
                shards,
                partitioner: chosen.partitioner,
                hash_sample_load: chosen.hash_load,
                range_sample_load: chosen.range_load,
                curve,
                reason,
            },
        }
    }

    /// The adaptive partitioner choice at a candidate shard count: fitted
    /// range when the sampled quantiles spread the load, hash when skew
    /// concentrates it.
    fn partitioner_at(&self, sample: &[u64], shards: usize, seed: u64) -> PartitionerChoice {
        let hash = Sharder::new(ShardPartitioner::Hash, shards, seed);
        let hash_load = max_load_fraction(sample, &hash);
        let fitted = Sharder::fitted_range(fit_boundaries(sample, shards))
            .expect("fit_boundaries yields ascending cuts");
        let range_load = max_load_fraction(sample, &fitted);
        if range_load <= self.cfg.range_load_factor * hash_load {
            PartitionerChoice {
                partitioner: ShardPartitioner::Range,
                load: range_load,
                hash_load,
                range_load,
                sharder: fitted,
            }
        } else {
            PartitionerChoice {
                partitioner: ShardPartitioner::Hash,
                load: hash_load,
                hash_load,
                range_load,
                sharder: hash,
            }
        }
    }

    /// The degenerate one-shard plan (empty input, single key).
    fn trivial_plan(&self, stats: cheetah_core::plan::KeyStats, seed: u64, why: &str) -> ShardPlan {
        let worker_seconds = stats.rows as f64 / self.cfg.ingest.arrival_rate.max(1.0);
        let merge_seconds =
            self.cfg.ingest.planning_latency(1, stats.rows.min(stats.distinct_estimate as u64))
                + self.cfg.per_shard_overhead_seconds;
        ShardPlan {
            sharder: Sharder::new(ShardPartitioner::Hash, 1, seed),
            report: PlanReport {
                rows: stats.rows,
                sample_len: stats.sample.len(),
                distinct_estimate: stats.distinct_estimate,
                top_key_mass: stats.top_key_mass,
                shards: 1,
                partitioner: ShardPartitioner::Hash,
                hash_sample_load: 1.0,
                range_sample_load: 1.0,
                curve: vec![ShardCostPoint { shards: 1, worker_seconds, merge_seconds }],
                reason: format!("chose 1 shard: {why}"),
            },
        }
    }
}

// ---------------------------------------------------------------------
// The online path chooser: a tiny deterministic UCB bandit over
// (execution path × pruning backend), tuned from observed breakdowns.
// ---------------------------------------------------------------------

/// Which execution twin a run goes through. The chooser scores these
/// against each other; the caller maps the choice onto the concrete entry
/// points (`run_cheetah_presplit` on the worker pool for the barrier twin,
/// `run_cheetah_streamed_resident` for the streamed one).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExecPath {
    /// Pre-split shards on the shared worker pool, barrier merge.
    BarrierPooled,
    /// Resident stream units with the overlapped merge plane.
    StreamedResident,
}

impl ExecPath {
    /// Short label for reports.
    pub fn label(self) -> &'static str {
        match self {
            ExecPath::BarrierPooled => "pooled",
            ExecPath::StreamedResident => "streamed",
        }
    }
}

/// One pullable arm: an execution path on a pruning backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChooserArm {
    /// The execution twin.
    pub path: ExecPath,
    /// The pruning engine.
    pub backend: cheetah_net::ExecBackend,
}

impl ChooserArm {
    /// `"pooled/compiled"`-style label for reports and assertions.
    pub fn label(self) -> String {
        format!("{}/{}", self.path.label(), self.backend.label())
    }
}

/// Per-arm cost accounting, backed by a telemetry histogram so every
/// observation the bandit makes is *also* an exported metric
/// (`…<arm>.cost_seconds` in the owning registry's snapshot).
///
/// Histograms keep an exact `sum`/`count` beside their buckets, so the
/// mean the bandit decides on is bit-identical to the private
/// `total_cost / plays` bookkeeping this replaced.
#[derive(Debug, Clone)]
struct ArmState {
    arm: ChooserArm,
    cost: cheetah_telemetry::Histogram,
}

impl ArmState {
    fn plays(&self) -> u64 {
        self.cost.count()
    }

    fn mean(&self) -> f64 {
        self.cost.mean().unwrap_or(0.0)
    }
}

/// A deterministic UCB1 bandit over the four (path × backend) arms,
/// learning online which execution strategy completes this query cheapest
/// — the Cuttlefish idea, shrunk to the two axes this engine actually
/// exposes. Costs are modelled completion seconds from observed
/// [`cheetah_net::ExecBreakdown`]s, so the chooser weighs real measured work plus the
/// byte-model transfer, exactly what the planner prices.
///
/// Determinism: arms are played in declaration order until each has one
/// observation, then the arm minimizing `mean − c·s·√(2·ln N / n)` (the
/// lower confidence bound — we minimize cost) is chosen; ties break to
/// the earliest arm. No RNG anywhere, so repeated runs reproduce.
///
/// `s` is the cheapest observed mean: textbook UCB1 assumes rewards in
/// `[0, 1]`, but completion costs are whatever the workload makes them —
/// seconds on paper-scale streams, microseconds on a smoke table. An
/// *absolute* bonus would drown sub-millisecond cost gaps and degenerate
/// into round-robin, so the bonus is rescaled by the observed cost floor,
/// making the pick sequence invariant to the unit of cost.
///
/// The chooser also remembers the latest measured `entries_to_master`;
/// [`PathChooser::informed`] feeds it into a [`PlannerConfig`] as the
/// [`survivor_hint`](PlannerConfig::survivor_hint), re-pricing the merge
/// from reality instead of the distinct-estimate proxy.
#[derive(Debug, Clone)]
pub struct PathChooser {
    arms: [ArmState; 4],
    link_gbps: f64,
    explore: f64,
    measured_survivors: Option<u64>,
}

impl PathChooser {
    /// The four arms, in deterministic play order.
    pub const ARMS: [ChooserArm; 4] = [
        ChooserArm {
            path: ExecPath::BarrierPooled,
            backend: cheetah_net::ExecBackend::Interpreted,
        },
        ChooserArm { path: ExecPath::BarrierPooled, backend: cheetah_net::ExecBackend::Compiled },
        ChooserArm {
            path: ExecPath::StreamedResident,
            backend: cheetah_net::ExecBackend::Interpreted,
        },
        ChooserArm {
            path: ExecPath::StreamedResident,
            backend: cheetah_net::ExecBackend::Compiled,
        },
    ];

    /// A chooser costing completions over `link_gbps` links, recording
    /// arm costs into a private registry.
    pub fn new(link_gbps: f64) -> Self {
        Self::with_registry(link_gbps, &cheetah_telemetry::Registry::new(), "chooser")
    }

    /// A chooser whose arm-cost histograms live in `registry` under
    /// `<scope>.<arm>.cost_seconds` — the serving plane passes its
    /// session registry here so every bandit observation shows up in
    /// telemetry snapshots.
    pub fn with_registry(
        link_gbps: f64,
        registry: &cheetah_telemetry::Registry,
        scope: &str,
    ) -> Self {
        Self {
            arms: Self::ARMS.map(|arm| ArmState {
                arm,
                cost: registry.histogram(&format!("{scope}.{}.cost_seconds", arm.label())),
            }),
            link_gbps,
            // Softer than the textbook √2: with the bonus rescaled to
            // the observed cost floor, √2 would spend tens of pulls per
            // suboptimal arm before exploiting — too slow for the dozens
            // of repeats a query realistically gets. 0.5 still re-probes
            // arms whose gap is within ~½ of the floor.
            explore: 0.5,
            measured_survivors: None,
        }
    }

    /// Total observations across all arms.
    pub fn plays(&self) -> u64 {
        self.arms.iter().map(ArmState::plays).sum()
    }

    /// The arm to play next: each arm once, then lowest confidence bound.
    pub fn next(&self) -> ChooserArm {
        if let Some(unplayed) = self.arms.iter().find(|a| a.plays() == 0) {
            return unplayed.arm;
        }
        let n = self.plays() as f64;
        // The cost floor every bonus is expressed in units of — all four
        // arms have been played when we reach here.
        let scale = self
            .arms
            .iter()
            .map(ArmState::mean)
            .fold(f64::INFINITY, f64::min)
            .max(f64::MIN_POSITIVE);
        self.arms
            .iter()
            .map(|a| {
                (a.arm, a.mean() - self.explore * scale * (2.0 * n.ln() / a.plays() as f64).sqrt())
            })
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite costs"))
            .map(|(arm, _)| arm)
            .expect("four arms")
    }

    /// How many times `arm` has been played.
    pub fn plays_of(&self, arm: ChooserArm) -> u64 {
        self.arms.iter().find(|a| a.arm == arm).map_or(0, ArmState::plays)
    }

    /// Record what one run of `arm` cost, and remember its measured
    /// survivor volume for [`PathChooser::informed`].
    pub fn observe(&mut self, arm: ChooserArm, breakdown: &cheetah_net::ExecBreakdown) {
        let cost = breakdown.completion_seconds(self.link_gbps);
        let state =
            self.arms.iter_mut().find(|a| a.arm == arm).expect("observed arm is one of the four");
        state.cost.observe(cost);
        self.measured_survivors = Some(breakdown.entries_to_master);
    }

    /// The arm with the lowest observed mean cost (exploitation only —
    /// what the bandit has converged to). Unplayed arms are ignored;
    /// before any observation, the first arm.
    pub fn best(&self) -> ChooserArm {
        self.arms
            .iter()
            .filter(|a| a.plays() > 0)
            .min_by(|a, b| a.mean().partial_cmp(&b.mean()).expect("finite costs"))
            .map(|a| a.arm)
            .unwrap_or(Self::ARMS[0])
    }

    /// Observed mean completion cost of `arm`, if it has been played.
    pub fn mean_cost(&self, arm: ChooserArm) -> Option<f64> {
        self.arms.iter().find(|a| a.arm == arm && a.plays() > 0).map(ArmState::mean)
    }

    /// Total cost paid across every observation — the numerator of a
    /// cumulative-regret comparison against any fixed strategy.
    pub fn cumulative_cost(&self) -> f64 {
        self.arms.iter().map(|a| a.cost.sum()).sum()
    }

    /// The latest measured `entries_to_master`, once any run was observed.
    pub fn measured_survivors(&self) -> Option<u64> {
        self.measured_survivors
    }

    /// Feed the measured survivor volume back into a planner config: the
    /// returned config prices the merge from the observed
    /// `entries_to_master` instead of the distinct-estimate proxy.
    pub fn informed(&self, mut cfg: PlannerConfig) -> PlannerConfig {
        if let Some(measured) = self.measured_survivors {
            cfg.survivor_hint = Some(measured);
        }
        cfg
    }
}

struct PartitionerChoice {
    partitioner: ShardPartitioner,
    load: f64,
    hash_load: f64,
    range_load: f64,
    sharder: Sharder,
}

// ---------------------------------------------------------------------
// Routing-key extraction: the one home for "which key does this row
// route by" (the sharded layer and the planner both consume it).
// ---------------------------------------------------------------------

/// The routing key of row `row` of `part` for query `q` on `stream`.
///
/// Keyed queries route by their group/join key so each key lives on one
/// shard (exact key-union and co-partitioned-join merges); TOP N routes by
/// the order column (order-preserving encoding, so range sharding splits
/// the value space); scans and skylines route by a row-id hash (pure load
/// balance — their merges are routing-agnostic).
fn route_key(
    q: &DbQuery,
    seed: u64,
    stream: usize,
    part: &Partition,
    row: usize,
    global_row: u64,
) -> u64 {
    match q {
        DbQuery::FilterCount { .. } | DbQuery::Skyline { .. } => mix64(global_row ^ seed),
        DbQuery::Distinct { col } => encode_key(seed, &part.column(*col).get(row)),
        DbQuery::TopN { order_col, .. } => {
            encode_ordered_i64(part.column(*order_col).as_int().expect("int order col")[row])
        }
        DbQuery::GroupByMax { key_col, .. } | DbQuery::HavingSum { key_col, .. } => {
            encode_key(seed, &part.column(*key_col).get(row))
        }
        DbQuery::Join { left_key, right_key } => {
            let col = if stream == 0 { *left_key } else { *right_key };
            encode_key(seed, &part.column(col).get(row))
        }
    }
}

/// Every row's routing key for stream `stream`, in row order.
///
/// Public because every sharded execution path — the barrier twins here
/// and in [`crate::sharded`], and the streamed runtime in
/// `cheetah-runtime` — must route by the *same* keys for the per-operator
/// merge semantics to hold.
pub fn routing_keys(q: &DbQuery, stream: usize, table: &Table, seed: u64) -> Vec<u64> {
    let mut keys = Vec::with_capacity(table.rows());
    let mut global_row = 0u64;
    for p in table.partitions() {
        for r in 0..p.rows() {
            keys.push(route_key(q, seed, stream, p, r, global_row));
            global_row += 1;
        }
    }
    keys
}

/// The sharder of a *hand-picked* [`ShardSpec`]. Hash scatters over the
/// seed; Range fits its equal spans to the *observed* key bounds across
/// **both** streams — jointly, because JOIN co-partitioning needs one set
/// of boundaries for the two sides — so real key domains (string
/// fingerprints fill only the lower 2⁶³; encoded small ints cluster
/// around 2⁶³) split into populated spans instead of piling onto one
/// shard. (The planner's *fitted* range plan goes further and cuts at the
/// sampled quantiles.) Shared with the streamed runtime's fixed-layout
/// mode, hence public.
pub fn fixed_sharder(spec: &ShardSpec, seed: u64, keys: &[&[u64]]) -> Sharder {
    match spec.partitioner {
        ShardPartitioner::Hash => Sharder::new(ShardPartitioner::Hash, spec.shards, seed),
        ShardPartitioner::Range => {
            let mut bounds: Option<(u64, u64)> = None;
            for &k in keys.iter().flat_map(|s| s.iter()) {
                bounds = Some(match bounds {
                    None => (k, k),
                    Some((lo, hi)) => (lo.min(k), hi.max(k)),
                });
            }
            match bounds {
                Some((lo, hi)) => Sharder::range_over(lo, hi, spec.shards),
                // No rows anywhere: any total routing works.
                None => Sharder::new(ShardPartitioner::Range, spec.shards, seed),
            }
        }
    }
}

impl Cluster {
    /// Execute `q` sharded under a *planner-chosen* layout: sample the
    /// routing keys, pick the shard count from the ingest-model fan-in
    /// curve and the partitioner from the sampled skew, then run exactly
    /// like [`run_cheetah_sharded`](Cluster::run_cheetah_sharded). The
    /// returned run carries the [`ShardPlan`] (and
    /// `breakdown.plan = Some(PlanDecision::Planned(..))`).
    ///
    /// Output equals the baseline's and the unsharded run's for every
    /// query shape — the planner changes *where* rows go, never *what*
    /// the query answers.
    ///
    /// **Deprecated**: prefer the serving plane's front door — an
    /// un-pinned `cheetah_serve::QueryRequest` runs planner-chosen
    /// layouts through the session's plan cache, so repeat shapes skip
    /// the sampling pass entirely. This entry point stays as the shim
    /// the serving contract gates verify bit-identity against.
    #[doc(hidden)]
    pub fn run_cheetah_planned(
        &self,
        q: &DbQuery,
        left: &Table,
        right: Option<&Table>,
        planner: &ShardPlanner,
    ) -> cheetah_core::Result<ShardedRun> {
        let seed = self.tuning.seed;
        let left_keys = routing_keys(q, 0, left, seed);
        let right_keys = right.map(|r| routing_keys(q, 1, r, seed));
        let slices: Vec<&[u64]> =
            std::iter::once(left_keys.as_slice()).chain(right_keys.as_deref()).collect();
        let plan = planner.plan_from_keys(&slices, seed);
        let sharder = plan.sharder.clone();
        let decision = PlanDecision::Planned(plan.report.partitioner);
        self.run_cheetah_routed(
            q,
            left,
            right,
            &left_keys,
            right_keys.as_deref(),
            &sharder,
            &planner.cfg.ingest,
            decision,
            Some(plan),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::ExecBreakdown;
    use crate::testutil::test_table;

    #[test]
    fn plans_are_deterministic_in_seed_and_data() {
        let t = test_table(3_000, 4);
        let q = DbQuery::GroupByMax { key_col: 0, val_col: 1 };
        let planner = ShardPlanner::default();
        let a = planner.plan(&q, &t, None, 0xC43E7A);
        let b = planner.plan(&q, &t, None, 0xC43E7A);
        assert_eq!(a, b, "same seed + same tables must give the identical plan");
        let c = planner.plan(&q, &t, None, 0xC43E7A ^ 1);
        assert_eq!(c.report.rows, a.report.rows, "size estimates are seed-independent");
    }

    #[test]
    fn empty_table_plans_one_shard() {
        let t = crate::table::TableBuilder::new(
            "empty",
            vec![("agent".into(), crate::value::DataType::Str)],
            8,
        )
        .build();
        let planner = ShardPlanner::default();
        let plan = planner.plan(&DbQuery::Distinct { col: 0 }, &t, None, 7);
        assert_eq!(plan.shards(), 1);
        assert_eq!(plan.report.rows, 0);
        assert!(plan.report.reason.contains("empty"), "{}", plan.report.reason);
    }

    #[test]
    fn table_smaller_than_the_sample_is_sampled_exactly() {
        let t = test_table(50, 1);
        let planner = ShardPlanner::default();
        let plan = planner.plan(&DbQuery::Distinct { col: 0 }, &t, None, 7);
        assert_eq!(plan.report.rows, 50);
        assert_eq!(plan.report.sample_len, 50, "reservoir must hold every key");
    }

    #[test]
    fn spread_keys_pick_more_than_one_shard_and_a_range_fit() {
        // TOP N routes by the (spread) order column; the fitted quantile
        // plan balances it, so the planner keeps range and fans out.
        let t = test_table(20_000, 4);
        let planner = ShardPlanner::default();
        let plan = planner.plan(&DbQuery::TopN { order_col: 1, n: 10 }, &t, None, 3);
        assert!(plan.shards() > 1, "{}", plan.report.reason);
        assert!(
            plan.report.range_sample_load
                <= planner.cfg.range_load_factor * plan.report.hash_sample_load,
            "kept range must respect the load bound: {:?}",
            plan.report
        );
        assert_eq!(plan.report.curve.len(), planner.cfg.max_shards);
    }

    #[test]
    fn calibration_measures_real_constants_and_still_plans_correctly() {
        let cluster = Cluster::default();
        let t = test_table(3_000, 3);
        let cfg = PlannerConfig::default().calibrate(&cluster, &Tables::unary(&t));
        let cal = cfg.calibration.expect("probe ran");
        assert_eq!(cal.probe_rows, 512);
        assert!(cal.measured_arrival_rate > 0.0);
        assert!(cal.measured_overhead_seconds > 0.0);
        assert!(
            (cfg.per_shard_overhead_seconds - cal.measured_overhead_seconds.max(1e-9)).abs()
                < 1e-12
        );
        assert_eq!(cfg.ingest.arrival_rate, cal.measured_arrival_rate.max(1.0));
        // A calibrated planner keeps the correctness contract.
        let planner = ShardPlanner::new(cfg);
        let q = DbQuery::GroupByMax { key_col: 0, val_col: 1 };
        let planned = cluster.run_cheetah_planned(&q, &t, None, &planner).unwrap();
        assert_eq!(planned.output, cluster.run_baseline(&q, &t, None).output);
    }

    #[test]
    fn calibration_of_an_empty_table_is_a_no_op() {
        let cluster = Cluster::default();
        let t = crate::table::TableBuilder::new(
            "empty",
            vec![("agent".into(), crate::value::DataType::Str)],
            8,
        )
        .build();
        let cfg = PlannerConfig::default().calibrate(&cluster, &Tables::unary(&t));
        assert_eq!(cfg, PlannerConfig::default());
        assert!(cfg.calibration.is_none());
    }

    /// High-fanout join: few distinct keys, every row matches. Survivors
    /// are matching *rows* from both streams; the distinct-key proxy is
    /// off by orders of magnitude.
    fn high_fanout_tables() -> (Table, Table) {
        let fields = vec![
            ("k".into(), crate::value::DataType::Int),
            ("v".into(), crate::value::DataType::Int),
        ];
        let mut l = crate::table::TableBuilder::new("l", fields.clone(), 1000);
        let mut r = crate::table::TableBuilder::new("r", fields, 1000);
        for i in 0..3000i64 {
            l.push_row(vec![crate::value::Value::Int(i % 8), crate::value::Value::Int(i)]);
            r.push_row(vec![crate::value::Value::Int(i % 8), crate::value::Value::Int(-i)]);
        }
        (l.build(), r.build())
    }

    #[test]
    fn measured_survivors_reprice_the_high_fanout_join_merge() {
        // The satellite-1 regression: without feedback the planner prices
        // the JOIN merge from ~8 distinct keys; the run actually delivers
        // thousands of matching rows to the master. Learning the measured
        // `entries_to_master` must close that >2× under-pricing.
        let cluster = Cluster::default();
        let (l, r) = high_fanout_tables();
        let q = DbQuery::Join { left_key: 0, right_key: 0 };
        let measured = cluster.run_cheetah(&q, &l, Some(&r)).unwrap().breakdown.entries_to_master;
        assert!(measured > 1_000, "high-fanout adversary must flood the master: {measured}");

        let seed = cluster.tuning.seed;
        let blind = ShardPlanner::default();
        let blind_plan = blind.plan(&q, &l, Some(&r), seed);
        let mut chooser = PathChooser::new(10.0);
        chooser.observe(
            PathChooser::ARMS[0],
            &ExecBreakdown { entries_to_master: measured, ..ExecBreakdown::default() },
        );
        let informed = ShardPlanner::new(chooser.informed(PlannerConfig::default()));
        let informed_plan = informed.plan(&q, &l, Some(&r), seed);

        // Compare the merge model at every candidate shard count, with the
        // fixed per-shard overhead subtracted so only the survivor term
        // speaks. The truth is the ingest price of the measured volume.
        let ingest = MasterIngestModel::default_rack();
        let overhead = |n: usize| n as f64 * blind.cfg.per_shard_overhead_seconds;
        for (b, i) in blind_plan.report.curve.iter().zip(&informed_plan.report.curve) {
            assert_eq!(b.shards, i.shards);
            let truth = ingest.planning_latency(b.shards, measured);
            let blind_price = b.merge_seconds - overhead(b.shards);
            let informed_price = i.merge_seconds - overhead(i.shards);
            assert!(
                truth > 2.0 * blind_price,
                "adversary no longer exhibits the undershoot at {} shards: \
                 truth {truth}, blind {blind_price}",
                b.shards
            );
            assert!(
                truth <= 2.0 * informed_price,
                "informed planner still under-prices the merge by >2× at {} shards: \
                 truth {truth}, informed {informed_price}",
                b.shards
            );
        }
    }

    #[test]
    fn chooser_plays_every_arm_once_then_converges_to_the_cheapest() {
        let mut chooser = PathChooser::new(10.0);
        // Deterministic cost per arm: streamed/compiled is the cheapest.
        let cost_of = |arm: ChooserArm| match (arm.path, arm.backend) {
            (ExecPath::BarrierPooled, crate::engine::ExecBackend::Interpreted) => 4.0,
            (ExecPath::BarrierPooled, crate::engine::ExecBackend::Compiled) => 2.0,
            (ExecPath::StreamedResident, crate::engine::ExecBackend::Interpreted) => 3.0,
            (ExecPath::StreamedResident, crate::engine::ExecBackend::Compiled) => 1.0,
        };
        let mut seen = Vec::new();
        for _ in 0..40 {
            let arm = chooser.next();
            seen.push(arm);
            chooser.observe(
                arm,
                &ExecBreakdown { master_seconds: cost_of(arm), ..ExecBreakdown::default() },
            );
        }
        // Warm-up: the four arms in declaration order.
        assert_eq!(&seen[..4], &PathChooser::ARMS);
        let winner = ChooserArm {
            path: ExecPath::StreamedResident,
            backend: crate::engine::ExecBackend::Compiled,
        };
        assert_eq!(chooser.best(), winner);
        // Converged: the cheapest arm dominates the post-warm-up plays.
        let wins = seen[4..].iter().filter(|a| **a == winner).count();
        assert!(wins * 2 > seen.len() - 4, "winner played only {wins}/{}", seen.len() - 4);
        // And the bandit's average cost beats the worst fixed strategy.
        let avg = chooser.cumulative_cost() / chooser.plays() as f64;
        assert!(avg < 4.0, "bandit average {avg} not better than always-worst");
    }

    #[test]
    fn chooser_is_deterministic() {
        let run = || {
            let mut c = PathChooser::new(10.0);
            let mut picked = Vec::new();
            for i in 0..20u64 {
                let arm = c.next();
                picked.push(arm.label());
                c.observe(
                    arm,
                    &ExecBreakdown {
                        master_seconds: (i % 5) as f64
                            + if arm.backend == crate::engine::ExecBackend::Compiled {
                                0.0
                            } else {
                                1.0
                            },
                        ..ExecBreakdown::default()
                    },
                );
            }
            picked
        };
        assert_eq!(run(), run(), "no RNG: identical histories must replay identically");
    }

    #[test]
    fn planned_run_matches_fixed_sharded_output() {
        let cluster = Cluster::default();
        let t = test_table(2_000, 3);
        let q = DbQuery::Distinct { col: 0 };
        let fixed = cluster
            .run_cheetah_sharded(&q, &t, None, &ShardSpec::new(4, ShardPartitioner::Hash))
            .unwrap();
        let planned = cluster.run_cheetah_planned(&q, &t, None, &ShardPlanner::default()).unwrap();
        assert_eq!(fixed.output, planned.output);
        let plan = planned.plan.as_ref().expect("planned run records its plan");
        assert_eq!(planned.breakdown.shards as usize, plan.shards());
        assert!(planned.breakdown.plan.expect("decision recorded").is_planned());
        assert!(fixed.plan.is_none(), "fixed runs carry no plan");
    }
}

//! Typed values and their switch encodings.

use serde::{Deserialize, Serialize};
use std::fmt;

/// Column data types.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum DataType {
    /// 64-bit signed integer.
    Int,
    /// UTF-8 string.
    Str,
}

/// One cell value.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Value {
    /// Integer value.
    Int(i64),
    /// String value.
    Str(String),
}

impl Value {
    /// The value's type.
    pub fn data_type(&self) -> DataType {
        match self {
            Value::Int(_) => DataType::Int,
            Value::Str(_) => DataType::Str,
        }
    }

    /// Integer content, or `None` for strings.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            Value::Str(_) => None,
        }
    }

    /// String content, or `None` for ints.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            Value::Int(_) => None,
        }
    }

    /// Approximate serialized size in bytes (for transfer accounting).
    pub fn wire_bytes(&self) -> u64 {
        match self {
            Value::Int(_) => 8,
            Value::Str(s) => 4 + s.len() as u64,
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Int(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s}"),
        }
    }
}

/// Order-preserving encoding of an `i64` into a `u64`:
/// `a < b  ⇔  encode(a) < encode(b)`. This is how the CWorker serializes
/// integer order-by / comparison columns so the switch's *unsigned* ALU
/// comparisons agree with signed SQL semantics.
#[inline]
pub fn encode_ordered_i64(v: i64) -> u64 {
    (v as u64) ^ (1u64 << 63)
}

/// Inverse of [`encode_ordered_i64`].
#[inline]
pub fn decode_ordered_i64(u: u64) -> i64 {
    (u ^ (1u64 << 63)) as i64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordered_encoding_preserves_order() {
        let samples = [i64::MIN, -5, -1, 0, 1, 42, i64::MAX];
        for &a in &samples {
            for &b in &samples {
                assert_eq!(a < b, encode_ordered_i64(a) < encode_ordered_i64(b), "{a} vs {b}");
            }
        }
    }

    #[test]
    fn ordered_encoding_roundtrips() {
        for &v in &[i64::MIN, -1, 0, 7, i64::MAX] {
            assert_eq!(decode_ordered_i64(encode_ordered_i64(v)), v);
        }
    }

    #[test]
    fn wire_bytes() {
        assert_eq!(Value::Int(0).wire_bytes(), 8);
        assert_eq!(Value::Str("abcd".into()).wire_bytes(), 8);
    }

    #[test]
    fn accessors() {
        assert_eq!(Value::Int(3).as_int(), Some(3));
        assert_eq!(Value::Int(3).as_str(), None);
        assert_eq!(Value::Str("x".into()).as_str(), Some("x"));
        assert_eq!(Value::Str("x".into()).data_type(), DataType::Str);
    }
}

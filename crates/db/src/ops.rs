//! The baseline ("Spark") operators: per-partition partials and master-side
//! merges.
//!
//! Each function here does real work on real data — the Figure 5/6/8
//! experiments time these functions, so they are written the way a vanilla
//! engine would: tight loops over columnar data, partial aggregation at the
//! workers, merge at the master.

use crate::expr::DbPredicate;
use crate::table::Partition;
use crate::value::Value;
use std::collections::{BinaryHeap, HashMap, HashSet};

/// Row-wise predicate evaluation against a partition.
pub fn eval_predicate(pred: &DbPredicate, part: &Partition, row: usize) -> bool {
    match pred {
        DbPredicate::CmpInt { col, op, lit } => {
            let v = part.column(*col).as_int().expect("CmpInt on int column")[row];
            op.eval(v, *lit)
        }
        DbPredicate::Like { col, pattern } => {
            let s = &part.column(*col).as_str().expect("Like on string column")[row];
            pattern.matches(s)
        }
        DbPredicate::And(xs) => xs.iter().all(|p| eval_predicate(p, part, row)),
        DbPredicate::Or(xs) => xs.iter().any(|p| eval_predicate(p, part, row)),
    }
}

/// Worker partial: count of rows satisfying the predicate.
pub fn partial_filter_count(pred: &DbPredicate, part: &Partition) -> u64 {
    let mut n = 0;
    for row in 0..part.rows() {
        if eval_predicate(pred, part, row) {
            n += 1;
        }
    }
    n
}

/// Worker partial: distinct values of a column.
pub fn partial_distinct(col: usize, part: &Partition) -> HashSet<Value> {
    let mut set = HashSet::new();
    match part.column(col) {
        crate::table::Column::Int(v) => {
            for &x in v {
                set.insert(Value::Int(x));
            }
        }
        crate::table::Column::Str(v) => {
            for s in v {
                set.insert(Value::Str(s.clone()));
            }
        }
    }
    set
}

/// Worker partial: the `n` largest values of an int column, descending.
pub fn partial_topn(col: usize, n: usize, part: &Partition) -> Vec<i64> {
    let vals = part.column(col).as_int().expect("TopN on int column");
    let mut heap: BinaryHeap<std::cmp::Reverse<i64>> = BinaryHeap::with_capacity(n + 1);
    for &v in vals {
        if heap.len() < n {
            heap.push(std::cmp::Reverse(v));
        } else if let Some(&std::cmp::Reverse(min)) = heap.peek() {
            if v > min {
                heap.pop();
                heap.push(std::cmp::Reverse(v));
            }
        }
    }
    let mut out: Vec<i64> = heap.into_iter().map(|r| r.0).collect();
    out.sort_unstable_by(|a, b| b.cmp(a));
    out
}

/// Master merge for TOP N partials.
pub fn merge_topn(partials: Vec<Vec<i64>>, n: usize) -> Vec<i64> {
    let mut all: Vec<i64> = partials.into_iter().flatten().collect();
    all.sort_unstable_by(|a, b| b.cmp(a));
    all.truncate(n);
    all
}

/// Worker partial: per-key maximum of an int column.
pub fn partial_groupby_max(
    key_col: usize,
    val_col: usize,
    part: &Partition,
) -> HashMap<Value, i64> {
    let vals = part.column(val_col).as_int().expect("aggregate on int column");
    let mut out: HashMap<Value, i64> = HashMap::new();
    for (row, &v) in vals.iter().enumerate() {
        let k = part.column(key_col).get(row);
        out.entry(k).and_modify(|m| *m = (*m).max(v)).or_insert(v);
    }
    out
}

/// Master merge for GROUP BY MAX partials.
pub fn merge_groupby_max(partials: Vec<HashMap<Value, i64>>) -> HashMap<Value, i64> {
    let mut out: HashMap<Value, i64> = HashMap::new();
    for p in partials {
        for (k, v) in p {
            out.entry(k).and_modify(|m| *m = (*m).max(v)).or_insert(v);
        }
    }
    out
}

/// Worker partial: per-key sum of an int column.
pub fn partial_sum_by_key(key_col: usize, val_col: usize, part: &Partition) -> HashMap<Value, i64> {
    let vals = part.column(val_col).as_int().expect("aggregate on int column");
    let mut out: HashMap<Value, i64> = HashMap::new();
    for (row, &v) in vals.iter().enumerate() {
        let k = part.column(key_col).get(row);
        *out.entry(k).or_insert(0) += v;
    }
    out
}

/// Master merge for per-key sums.
pub fn merge_sums(partials: Vec<HashMap<Value, i64>>) -> HashMap<Value, i64> {
    let mut out: HashMap<Value, i64> = HashMap::new();
    for p in partials {
        for (k, v) in p {
            *out.entry(k).or_insert(0) += v;
        }
    }
    out
}

/// `x` dominated by `y` under maximization (all coordinates ≤).
pub fn dominated(x: &[i64], y: &[i64]) -> bool {
    x.iter().zip(y).all(|(a, b)| a <= b)
}

/// Exact skyline (Pareto set) of a point set: points not strictly
/// dominated by any other; duplicates collapse to one representative.
pub fn skyline_of(points: &[Vec<i64>]) -> Vec<Vec<i64>> {
    let mut out: Vec<Vec<i64>> = Vec::new();
    for p in points {
        if out.iter().any(|q| dominated(p, q)) {
            continue; // dominated (or duplicate of) an accepted point
        }
        out.retain(|q| !dominated(q, p));
        out.push(p.clone());
    }
    out.sort();
    out.dedup();
    out
}

/// Worker partial: local skyline of a partition's dimension columns.
pub fn partial_skyline(cols: &[usize], part: &Partition) -> Vec<Vec<i64>> {
    let dims: Vec<&[i64]> =
        cols.iter().map(|&c| part.column(c).as_int().expect("skyline on int columns")).collect();
    let points: Vec<Vec<i64>> =
        (0..part.rows()).map(|r| dims.iter().map(|d| d[r]).collect()).collect();
    skyline_of(&points)
}

/// Worker partial for join: the key column as values.
pub fn extract_keys(col: usize, part: &Partition) -> Vec<Value> {
    (0..part.rows()).map(|r| part.column(col).get(r)).collect()
}

/// Master: hash-join pair count between two key multisets.
pub fn hash_join_pairs(left: &[Value], right: &[Value]) -> u64 {
    let mut build: HashMap<&Value, u64> = HashMap::new();
    for k in left {
        *build.entry(k).or_insert(0) += 1;
    }
    let mut pairs = 0u64;
    for k in right {
        if let Some(&c) = build.get(k) {
            pairs += c;
        }
    }
    pairs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{IntCmp, LikePattern};
    use crate::table::{Column, Partition};

    fn ratings() -> Partition {
        // The paper's Table 1(b): name, taste, texture.
        Partition::new(vec![
            Column::Str(vec![
                "Pizza".into(),
                "Cheetos".into(),
                "Jello".into(),
                "Burger".into(),
                "Fries".into(),
            ]),
            Column::Int(vec![7, 8, 9, 5, 3]),
            Column::Int(vec![5, 6, 4, 7, 3]),
        ])
    }

    #[test]
    fn filter_count_matches_paper_example() {
        // (taste > 5) OR (texture > 4 AND name LIKE 'e%s'): Pizza (7>5),
        // Cheetos (8>5), Jello (9>5) — Burger has texture 7 but name
        // doesn't match e%s; Fries fails everything.
        let pred = DbPredicate::Or(vec![
            DbPredicate::CmpInt { col: 1, op: IntCmp::Gt, lit: 5 },
            DbPredicate::And(vec![
                DbPredicate::CmpInt { col: 2, op: IntCmp::Gt, lit: 4 },
                DbPredicate::Like { col: 0, pattern: LikePattern::parse("e%s") },
            ]),
        ]);
        assert_eq!(partial_filter_count(&pred, &ratings()), 3);
    }

    #[test]
    fn distinct_collects_unique() {
        let p = Partition::new(vec![Column::Str(vec![
            "McCheetah".into(),
            "Papizza".into(),
            "McCheetah".into(),
            "JellyFish".into(),
        ])]);
        let d = partial_distinct(0, &p);
        assert_eq!(d.len(), 3);
        assert!(d.contains(&Value::Str("Papizza".into())));
    }

    #[test]
    fn topn_and_merge() {
        let p = ratings();
        assert_eq!(partial_topn(1, 3, &p), vec![9, 8, 7]);
        let merged = merge_topn(vec![vec![9, 8, 7], vec![10, 2]], 3);
        assert_eq!(merged, vec![10, 9, 8]);
    }

    #[test]
    fn topn_with_fewer_rows_than_n() {
        assert_eq!(partial_topn(1, 100, &ratings()).len(), 5);
    }

    #[test]
    fn groupby_max_merge() {
        let a = HashMap::from([(Value::Int(1), 5i64), (Value::Int(2), 3)]);
        let b = HashMap::from([(Value::Int(1), 9i64), (Value::Int(3), 1)]);
        let m = merge_groupby_max(vec![a, b]);
        assert_eq!(m[&Value::Int(1)], 9);
        assert_eq!(m[&Value::Int(2)], 3);
        assert_eq!(m[&Value::Int(3)], 1);
    }

    #[test]
    fn sums_merge() {
        let a = HashMap::from([(Value::Int(1), 5i64)]);
        let b = HashMap::from([(Value::Int(1), 9i64), (Value::Int(3), 1)]);
        let m = merge_sums(vec![a, b]);
        assert_eq!(m[&Value::Int(1)], 14);
    }

    #[test]
    fn skyline_paper_example() {
        // Ratings (taste, texture): skyline = Cheetos (8,6), Jello (9,4),
        // Burger (5,7).
        let sky = partial_skyline(&[1, 2], &ratings());
        let want = {
            let mut w = vec![vec![8, 6], vec![9, 4], vec![5, 7]];
            w.sort();
            w
        };
        assert_eq!(sky, want);
    }

    #[test]
    fn skyline_handles_duplicates_and_dominance_chains() {
        let pts = vec![vec![1, 1], vec![2, 2], vec![2, 2], vec![3, 3]];
        assert_eq!(skyline_of(&pts), vec![vec![3, 3]]);
    }

    #[test]
    fn join_pair_count_multiplicities() {
        let left = vec![Value::Int(1), Value::Int(1), Value::Int(2)];
        let right = vec![Value::Int(1), Value::Int(2), Value::Int(2), Value::Int(3)];
        // key 1: 2·1, key 2: 1·2 → 4 pairs.
        assert_eq!(hash_join_pairs(&left, &right), 4);
    }

    #[test]
    fn predicate_eval_on_strings() {
        let p = ratings();
        let pred = DbPredicate::Like { col: 0, pattern: LikePattern::parse("%urger") };
        let hits: Vec<usize> = (0..p.rows()).filter(|&r| eval_predicate(&pred, &p, r)).collect();
        assert_eq!(hits, vec![3]);
    }
}

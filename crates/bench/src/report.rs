//! Tabular experiment reports: aligned text for the terminal, CSV for
//! plotting.

/// One experiment's output table.
#[derive(Debug, Clone)]
pub struct Report {
    /// Short id, e.g. `fig10a`.
    pub id: &'static str,
    /// Human title, e.g. the figure caption.
    pub title: String,
    /// Column headers.
    pub headers: Vec<String>,
    /// Data rows (already formatted).
    pub rows: Vec<Vec<String>>,
    /// Free-text notes (substitutions, parameters, caveats).
    pub notes: Vec<String>,
}

impl Report {
    /// Start a report.
    pub fn new(id: &'static str, title: impl Into<String>, headers: &[&str]) -> Self {
        Self {
            id,
            title: title.into(),
            headers: headers.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
            notes: Vec::new(),
        }
    }

    /// Append a row.
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.headers.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Append a note.
    pub fn note(&mut self, s: impl Into<String>) {
        self.notes.push(s.into());
    }

    /// Render as an aligned text table.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.headers.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, c) in widths.iter_mut().zip(row) {
                *w = (*w).max(c.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} — {} ==\n", self.id, self.title));
        let line = |cells: &[String], widths: &[usize]| -> String {
            cells.iter().zip(widths).map(|(c, w)| format!("{c:>w$}")).collect::<Vec<_>>().join("  ")
        };
        out.push_str(&line(&self.headers, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * widths.len()));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&line(row, &widths));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("note: {n}\n"));
        }
        out
    }

    /// Render as CSV (headers + rows; notes as trailing comments).
    pub fn to_csv(&self) -> String {
        let esc = |s: &String| {
            if s.contains(',') || s.contains('"') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(esc).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(esc).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        for n in &self.notes {
            out.push_str(&format!("# {n}\n"));
        }
        out
    }
}

/// Format a fraction in scientific-ish notation matching the paper's
/// log-scale plots.
pub fn frac(f: f64) -> String {
    if f == 0.0 {
        "0".to_string()
    } else if f >= 0.01 {
        format!("{f:.4}")
    } else {
        format!("{f:.2e}")
    }
}

/// Format seconds.
pub fn secs(s: f64) -> String {
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.2}ms", s * 1e3)
    } else {
        format!("{:.1}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_aligns_columns() {
        let mut r = Report::new("t", "test", &["a", "longer"]);
        r.row(vec!["1".into(), "2".into()]);
        r.row(vec!["100".into(), "20000".into()]);
        r.note("hello");
        let s = r.render();
        assert!(s.contains("t — test"));
        assert!(s.contains("note: hello"));
        // All data lines have equal length.
        let lines: Vec<&str> = s.lines().skip(1).take(4).collect();
        assert_eq!(lines[2].len(), lines[3].len());
    }

    #[test]
    fn csv_escapes_commas() {
        let mut r = Report::new("t", "test", &["a"]);
        r.row(vec!["x,y".into()]);
        assert!(r.to_csv().contains("\"x,y\""));
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn arity_checked() {
        let mut r = Report::new("t", "test", &["a", "b"]);
        r.row(vec!["1".into()]);
    }

    #[test]
    fn formatters() {
        assert_eq!(frac(0.5), "0.5000");
        assert!(frac(1e-5).contains('e'));
        assert_eq!(frac(0.0), "0");
        assert_eq!(secs(2.5), "2.50s");
        assert_eq!(secs(0.002), "2.00ms");
        assert_eq!(secs(2e-6), "2.0µs");
    }
}

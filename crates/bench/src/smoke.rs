//! The perf-smoke harness behind CI's `BENCH_smoke.json` gate.
//!
//! A tiny, fixed-seed benchmark pass over every query family — including
//! a 4-shard sharded run per mergeable family — that emits a
//! machine-readable report (ops/sec and bytes-pruned) and can compare
//! itself against a checked-in baseline. CI runs it on every push
//! (`make bench-smoke` reproduces the exact invocation locally), uploads
//! the JSON as an artifact, and fails the build on a >20 % regression.
//!
//! Two metric classes, deliberately mixed:
//!
//! * **ops/sec** is wall-clock (best of `reps` repetitions to shave
//!   scheduler noise) — it catches a hot-path slowdown but varies across
//!   machines, hence the generous default tolerance;
//! * **bytes-pruned** is *deterministic* for a fixed seed — it catches a
//!   silent pruning-quality regression even when the machine is fast
//!   enough to hide it.
//!
//! The JSON is hand-rolled (one family per line) because the vendored
//! serde stand-in has no serializer; the parser only promises to read
//! what [`SmokeReport::to_json`] writes.

use cheetah_core::ShardPartitioner;
use cheetah_db::{
    fixed_sharder, route_range, routing_keys, Cluster, DbPredicate, DbQuery, ExecBackend, ExecPath,
    IntCmp, PlanDecision, ShardPlanner, ShardSpec, Table,
};
use cheetah_net::ENTRY_WIRE_BYTES;
use cheetah_runtime::{FaultSpec, PooledExecution, StreamSpec, StreamedExecution};
use cheetah_serve::{QueryRequest, Session, SessionConfig};
use cheetah_telemetry::{Registry, Trace};
use cheetah_workloads::SkewedTableConfig;
use std::sync::Arc;
use std::time::Instant;

/// One query family's smoke metrics.
#[derive(Debug, Clone, PartialEq)]
pub struct SmokeFamily {
    /// Family id, e.g. `distinct` or `distinct@shards4`.
    pub name: String,
    /// Engine backend the run's breakdown reported (`interp` or
    /// `compiled`) — what actually executed, not what was requested.
    pub backend: String,
    /// Input rows per second of the best repetition.
    pub ops_per_sec: f64,
    /// Bytes the switch pruned off the wire (deterministic in the seed).
    pub bytes_pruned: u64,
    /// Survivor entries the master saw.
    pub entries_to_master: u64,
}

/// Cross-cutting observability numbers one smoke pass produces, read
/// from the telemetry plane rather than ad-hoc counters: the serving
/// burst's queue p99 out of the session registry, a deterministic
/// plan-cache hit rate, and the go-back-N resend count of a seeded
/// faulty-channel run. Informational (never gated — queue time is
/// wall clock on a shared runner) and absent from baselines written
/// before the telemetry plane existed.
#[derive(Debug, Clone, PartialEq)]
pub struct SmokeTelemetry {
    /// p99 of `serve.queue_seconds` over the burst session's registry.
    pub queue_p99_seconds: f64,
    /// Plan-cache hit rate of a fixed four-request planner-path quartet
    /// (one shape, repeated: 1 miss + 3 hits = 0.75, deterministic).
    pub plan_cache_hit_rate: f64,
    /// `net.retransmits` a harsh seeded faulty channel attributed to the
    /// tracing registry (equals the run breakdown's count by the
    /// telemetry contract gate).
    pub retransmits: u64,
}

/// The whole smoke report.
#[derive(Debug, Clone, PartialEq)]
pub struct SmokeReport {
    /// Workload seed.
    pub seed: u64,
    /// Rows in the (left) smoke table.
    pub rows: usize,
    /// Per-family metrics.
    pub families: Vec<SmokeFamily>,
    /// Observability block (`None` when parsed from a pre-telemetry
    /// baseline).
    pub telemetry: Option<SmokeTelemetry>,
}

/// Shard count of the sharded smoke runs.
pub const SMOKE_SHARDS: usize = 4;

/// Query families the smoke pass covers (all seven [`DbQuery`] shapes).
fn smoke_queries() -> Vec<(&'static str, DbQuery)> {
    vec![
        (
            "filter-count",
            DbQuery::FilterCount {
                pred: DbPredicate::CmpInt { col: 1, op: IntCmp::Gt, lit: 90_000 },
            },
        ),
        ("distinct", DbQuery::Distinct { col: 0 }),
        ("topn", DbQuery::TopN { order_col: 1, n: 64 }),
        ("groupby-max", DbQuery::GroupByMax { key_col: 0, val_col: 1 }),
        ("having-sum", DbQuery::HavingSum { key_col: 0, val_col: 2, threshold: 40_000 }),
        ("skyline", DbQuery::Skyline { cols: vec![1, 2] }),
        ("join", DbQuery::Join { left_key: 0, right_key: 0 }),
    ]
}

fn smoke_tables(seed: u64, rows: usize) -> (Table, Table) {
    let left = SkewedTableConfig {
        rows,
        partitions: 4,
        partition_skew: 0.6,
        keys: 200,
        key_skew: 1.0,
        seed,
    }
    .build();
    let right = SkewedTableConfig {
        rows: rows / 2,
        partitions: 2,
        partition_skew: 0.4,
        keys: 200,
        key_skew: 0.8,
        seed: seed ^ 0xFACE,
    }
    .build();
    (left, right)
}

/// Time `execute` best-of-`reps` and record one family. `execute` returns
/// the run's `(pruned entries, entries to master, backend)` — the same
/// metric derivation for unsharded and sharded passes by construction,
/// and the backend is the one the breakdown *reported*, so a compiled row
/// that silently fell back to the interpreter is visible in the JSON.
fn measure_family(
    name: String,
    input_rows: usize,
    reps: usize,
    mut execute: impl FnMut() -> (u64, u64, ExecBackend),
) -> SmokeFamily {
    let mut best = f64::INFINITY;
    let mut counters = (0, 0, ExecBackend::default());
    for _ in 0..reps.max(1) {
        let t0 = Instant::now();
        counters = execute();
        best = best.min(t0.elapsed().as_secs_f64());
    }
    let (pruned, entries_to_master, backend) = counters;
    SmokeFamily {
        name,
        backend: backend.label().to_string(),
        ops_per_sec: input_rows as f64 / best.max(1e-12),
        bytes_pruned: pruned * ENTRY_WIRE_BYTES,
        entries_to_master,
    }
}

/// Time two executions interleaved (A, B, A, B, …), best-of each, and
/// record both. The `@shards`/`@compiled` sibling pair is measured this
/// way because their *ratio* is itself gated
/// (`--smoke-compiled-speedup`): alternating back-to-back keeps scheduler
/// or frequency drift from landing on one side of the ratio, which
/// separate measurement windows cannot guarantee on a shared runner. The
/// pair also gets a floor of [`PAIR_REPS`] repetitions — a ratio needs
/// more samples than a lone wall-clock row.
#[allow(clippy::type_complexity)]
fn measure_pair(
    names: (String, String),
    input_rows: usize,
    reps: usize,
    mut exec_a: impl FnMut() -> (u64, u64, ExecBackend),
    mut exec_b: impl FnMut() -> (u64, u64, ExecBackend),
) -> (SmokeFamily, SmokeFamily) {
    let mut best = (f64::INFINITY, f64::INFINITY);
    let mut counters = ((0, 0, ExecBackend::default()), (0, 0, ExecBackend::default()));
    for _ in 0..reps.max(PAIR_REPS) {
        let t0 = Instant::now();
        counters.0 = exec_a();
        best.0 = best.0.min(t0.elapsed().as_secs_f64());
        let t1 = Instant::now();
        counters.1 = exec_b();
        best.1 = best.1.min(t1.elapsed().as_secs_f64());
    }
    let family = |name: String, (pruned, entries, backend): (u64, u64, ExecBackend), best: f64| {
        SmokeFamily {
            name,
            backend: backend.label().to_string(),
            ops_per_sec: input_rows as f64 / best.max(1e-12),
            bytes_pruned: pruned * ENTRY_WIRE_BYTES,
            entries_to_master: entries,
        }
    };
    (family(names.0, counters.0, best.0), family(names.1, counters.1, best.1))
}

/// Repetition floor for the interleaved sibling pair. Higher than the
/// default `reps` because a best-of *ratio* needs both sides to land a
/// clean repetition in the same window; at the smoke table's size one
/// extra rep costs well under a millisecond.
const PAIR_REPS: usize = 21;

/// Run the smoke pass: every family unsharded, plus — for three
/// representative families — a fixed [`SMOKE_SHARDS`]-shard run, a
/// planner-chosen run, *and* a streamed-runtime run; the `@planned` and
/// `@streamed` rows each gate with their own tolerance. A final
/// `burst@serving` row pushes a four-tenant closed-loop burst through the
/// `Session` front door (own tolerance again — it carries scheduler
/// threading variance on top of the pool's).
pub fn run_smoke(seed: u64, rows: usize, reps: usize) -> SmokeReport {
    let (left, right) = smoke_tables(seed, rows);
    let cluster = Cluster::default();
    let mut families = Vec::new();

    for (name, q) in smoke_queries() {
        let right_of = q.is_binary().then_some(&right);
        let input_rows = left.rows() + right_of.map_or(0, |r| r.rows());
        families.push(measure_family(name.to_string(), input_rows, reps, || {
            let run = cluster.run_cheetah(&q, &left, right_of).expect("plan fits");
            (run.switch_stats.pruned, run.breakdown.entries_to_master, run.breakdown.backend)
        }));
    }

    // The compiled twin of the barrier pool: same cluster tuning, every
    // shard routed through the plan-time fused kernels.
    let compiled = cluster.clone().with_backend(ExecBackend::Compiled);

    let planner = ShardPlanner::default();
    for (name, q) in [
        ("distinct", DbQuery::Distinct { col: 0 }),
        ("groupby-max", DbQuery::GroupByMax { key_col: 0, val_col: 1 }),
        ("join", DbQuery::Join { left_key: 0, right_key: 0 }),
    ] {
        let right_of = q.is_binary().then_some(&right);
        let input_rows = left.rows() + right_of.map_or(0, |r| r.rows());
        let spec = ShardSpec::new(SMOKE_SHARDS, ShardPartitioner::Hash);
        // Routing keys, the fitted sharder, and the shard split itself are
        // data layout, not execution: in the paper's deployment each worker
        // holds its slice from ingest on. Derive and route once, outside
        // the timed region, and time the resident-data entry on the
        // persistent worker pool. (The earlier harness re-derived keys,
        // re-fit the sharder, re-routed every row, and re-spawned scoped
        // threads inside every rep — setup noise on top of the execution
        // number this row is supposed to gate.)
        let seed = cluster.tuning.seed;
        let left_keys = routing_keys(&q, 0, &left, seed);
        let right_keys = right_of.map(|r| routing_keys(&q, 1, r, seed));
        let key_slices: Vec<&[u64]> =
            std::iter::once(left_keys.as_slice()).chain(right_keys.as_deref()).collect();
        let sharder = fixed_sharder(&spec, seed, &key_slices);
        let left_shards: Vec<Arc<Table>> = route_range(&left, &left_keys, &sharder, 0, left.rows())
            .into_iter()
            .map(Arc::new)
            .collect();
        let right_shards: Option<Vec<Arc<Table>>> = right_of.map(|r| {
            route_range(r, right_keys.as_deref().expect("binary query"), &sharder, 0, r.rows())
                .into_iter()
                .map(Arc::new)
                .collect()
        });
        // The @shards row and its @compiled twin — identical resident
        // layout, identical pool entry point, but the twin's shards run
        // the monomorphic fused kernel instead of walking the boxed stage
        // pipeline. The compiled contract gate proves the outputs and
        // counters identical; the twin's row gates the *speedup* (and its
        // own wall-clock floor, `--smoke-compiled-tolerance`), so the
        // pair is measured interleaved rather than as two windows.
        let presplit = |c: &Cluster| {
            let run = c
                .run_cheetah_presplit(
                    &q,
                    &left_shards,
                    right_shards.as_deref(),
                    &spec.ingest,
                    PlanDecision::Fixed(spec.partitioner),
                    None,
                )
                .expect("plan fits");
            (run.switch_stats.pruned, run.breakdown.entries_to_master, run.breakdown.backend)
        };
        let (interp_row, compiled_row) = measure_pair(
            (format!("{name}@shards{SMOKE_SHARDS}"), format!("{name}@compiled")),
            input_rows,
            reps,
            || presplit(&cluster),
            || presplit(&compiled),
        );
        families.push(interp_row);
        families.push(compiled_row);
        // The planned counterpart of the fixed-spec row above: same
        // query, same tables, layout chosen by the sample-driven
        // planner. `@planned` rows get their own gate tolerance —
        // planning adds a sampling pass and a data-dependent shard
        // count, so their wall-clock varies more than a pinned spec's.
        families.push(measure_family(format!("{name}@planned"), input_rows, reps, || {
            let run = cluster.run_cheetah_planned(&q, &left, right_of, &planner).expect("fits");
            (run.switch_stats.pruned, run.breakdown.entries_to_master, run.breakdown.backend)
        }));
        // The streamed-runtime twin of the same fixed spec: survivor
        // batches over bounded channels into the incremental merge. Its
        // pruning counters are deterministic like every other row (input
        // rounds change *which* duplicates the per-round switch programs
        // see, so its floor differs from @shards — that is recorded in
        // the baseline, not excused); its wall-clock carries threading +
        // framing variance, hence its own gate tolerance. Like @shards,
        // the layout (keys, sharder fit, per-round routing) is resident:
        // it is built once here and the timed region pays only dispatch,
        // per-shard pruning, framing, and the incremental merge.
        let streamed = StreamSpec::fixed(spec);
        let layout = cluster.plan_stream(&q, &left, right_of, &streamed);
        families.push(measure_family(format!("{name}@streamed"), input_rows, reps, || {
            let run = cluster.run_cheetah_streamed_resident(&q, &layout).expect("fits");
            (run.switch_stats.pruned, run.breakdown.entries_to_master, run.breakdown.backend)
        }));
    }

    let telemetry;
    // The serving-plane row: a four-tenant closed-loop burst pushed
    // through the `Session` front door. Every request is pinned to the
    // interpreted barrier pool at [`SMOKE_SHARDS`] — pinned requests skip
    // the plan cache and the bandit, so this row's counters stay
    // deterministic and its wall clock measures the *plane* (admission,
    // DRR scheduling, driver dispatch), not a path choice. The session is
    // resident like every layout above, and a warm-up request routes the
    // pinned shard layout before the first timed rep.
    {
        let q = DbQuery::Distinct { col: 0 };
        let serving_left = Arc::new(left.clone());
        let session = Session::new(cluster.clone(), SessionConfig::default());
        let tenants = ["alpha", "beta", "gamma", "delta"];
        const BURST_PER_TENANT: usize = 8;
        let pinned = |tenant: &str| {
            QueryRequest::new(q.clone(), Arc::clone(&serving_left))
                .tenant(tenant)
                .path(ExecPath::BarrierPooled)
                .backend(ExecBackend::Interpreted)
                .shards(SMOKE_SHARDS)
        };
        let warm = session.run_blocking(pinned("alpha")).expect("plan fits");
        let counters =
            (warm.switch_stats.pruned, warm.breakdown.entries_to_master, warm.breakdown.backend);
        let input_rows = left.rows() * tenants.len() * BURST_PER_TENANT;
        let session_ref = &session;
        let pinned_ref = &pinned;
        families.push(measure_family("burst@serving".to_string(), input_rows, reps, || {
            std::thread::scope(|s| {
                for tenant in tenants {
                    s.spawn(move || {
                        for _ in 0..BURST_PER_TENANT {
                            session_ref
                                .submit(pinned_ref(tenant))
                                .expect("burst stays under capacity")
                                .wait()
                                .expect("admitted requests complete");
                        }
                    });
                }
            });
            counters
        }));

        // The observability block, read from the telemetry plane the
        // burst just exercised. The pinned burst bypasses the plan
        // cache, so a fixed planner-path quartet (one shape, repeated)
        // supplies a deterministic hit rate: 1 miss + 3 hits.
        for _ in 0..4 {
            session
                .run_blocking(
                    QueryRequest::new(q.clone(), Arc::clone(&serving_left)).tenant("alpha"),
                )
                .expect("plan fits");
        }
        let queue_p99_seconds = session
            .registry()
            .snapshot()
            .histograms
            .get("serve.queue_seconds")
            .map_or(0.0, |h| h.p99);
        let plan_cache_hit_rate = session.stats().plan_hit_rate();

        // One harsh seeded faulty-channel run, traced so the fabric's
        // recovery work lands in a registry we can read back.
        let registry = Registry::new();
        let trace = Trace::new(registry.clone());
        let root = trace.span("query");
        {
            let _g = root.enter();
            let mut fspec = StreamSpec::fixed(ShardSpec::new(SMOKE_SHARDS, ShardPartitioner::Hash));
            fspec.batch = Some(4);
            fspec.fault = Some(FaultSpec::harsh(seed));
            cluster.run_cheetah_streamed(&q, &left, None, &fspec).expect("plan fits");
        }
        root.finish();
        let retransmits = registry.snapshot().counters.get("net.retransmits").copied().unwrap_or(0);

        telemetry = Some(SmokeTelemetry { queue_p99_seconds, plan_cache_hit_rate, retransmits });
    }

    SmokeReport { seed, rows, families, telemetry }
}

impl SmokeReport {
    /// Serialize: one family object per line, stable field order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema\": 1,\n  \"seed\": {},\n  \"rows\": {},\n",
            self.seed, self.rows
        ));
        out.push_str("  \"families\": [\n");
        for (i, f) in self.families.iter().enumerate() {
            let comma = if i + 1 < self.families.len() { "," } else { "" };
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"backend\": \"{}\", \"ops_per_sec\": {:.1}, \"bytes_pruned\": {}, \"entries_to_master\": {}}}{comma}\n",
                f.name, f.backend, f.ops_per_sec, f.bytes_pruned, f.entries_to_master
            ));
        }
        match &self.telemetry {
            Some(t) => {
                out.push_str("  ],\n");
                out.push_str(&format!(
                    "  \"telemetry\": {{\"queue_p99_seconds\": {:.9}, \"plan_cache_hit_rate\": {:.6}, \"retransmits\": {}}}\n",
                    t.queue_p99_seconds, t.plan_cache_hit_rate, t.retransmits
                ));
                out.push_str("}\n");
            }
            None => out.push_str("  ]\n}\n"),
        }
        out
    }

    /// Parse what [`SmokeReport::to_json`] writes (not a general JSON
    /// parser — the build environment has no serde_json).
    pub fn parse_json(s: &str) -> Result<SmokeReport, String> {
        let num_field = |line: &str, key: &str| -> Option<f64> {
            let tag = format!("\"{key}\":");
            let at = line.find(&tag)? + tag.len();
            let rest = line[at..].trim_start();
            let end = rest.find([',', '}']).unwrap_or(rest.len());
            rest[..end].trim().parse::<f64>().ok()
        };
        let str_field = |line: &str, key: &str| -> Option<String> {
            let tag = format!("\"{key}\": \"");
            let at = line.find(&tag)? + tag.len();
            let end = line[at..].find('"')?;
            Some(line[at..at + end].to_string())
        };
        let mut seed = None;
        let mut rows = None;
        let mut families = Vec::new();
        let mut telemetry = None;
        for line in s.lines() {
            if seed.is_none() {
                seed = num_field(line, "seed").map(|v| v as u64);
            }
            if rows.is_none() {
                rows = num_field(line, "rows").map(|v| v as usize);
            }
            // Optional: baselines written before the telemetry plane
            // simply lack the block.
            if line.contains("\"telemetry\"") {
                telemetry = Some(SmokeTelemetry {
                    queue_p99_seconds: num_field(line, "queue_p99_seconds")
                        .ok_or("telemetry block: missing queue_p99_seconds")?,
                    plan_cache_hit_rate: num_field(line, "plan_cache_hit_rate")
                        .ok_or("telemetry block: missing plan_cache_hit_rate")?,
                    retransmits: num_field(line, "retransmits")
                        .ok_or("telemetry block: missing retransmits")?
                        as u64,
                });
                continue;
            }
            if let Some(name) = str_field(line, "name") {
                let ops = num_field(line, "ops_per_sec")
                    .ok_or_else(|| format!("family {name}: missing ops_per_sec"))?;
                let bytes = num_field(line, "bytes_pruned")
                    .ok_or_else(|| format!("family {name}: missing bytes_pruned"))?;
                let entries = num_field(line, "entries_to_master")
                    .ok_or_else(|| format!("family {name}: missing entries_to_master"))?;
                // Baselines written before the backend column default to
                // the interpreter — the only engine that existed then.
                let backend = str_field(line, "backend").unwrap_or_else(|| "interp".to_string());
                families.push(SmokeFamily {
                    name,
                    backend,
                    ops_per_sec: ops,
                    bytes_pruned: bytes as u64,
                    entries_to_master: entries as u64,
                });
            }
        }
        if families.is_empty() {
            return Err("no families found in smoke JSON".to_string());
        }
        Ok(SmokeReport {
            seed: seed.ok_or("missing seed")?,
            rows: rows.ok_or("missing rows")?,
            families,
            telemetry,
        })
    }

    /// Compare against a baseline: every baseline family must still exist,
    /// its ops/sec must not have dropped by more than `tolerance`
    /// (fraction, e.g. `0.2`), and its bytes-pruned must not have shrunk
    /// by more than `tolerance` (less pruning = quality regression).
    /// `@planned`, `@streamed`, `@compiled`, and `@serving` families are
    /// gated with `tolerance` too; use
    /// [`SmokeReport::regressions_against_with`] to give them their own.
    /// Returns the violations, empty when the gate passes.
    pub fn regressions_against(&self, baseline: &SmokeReport, tolerance: f64) -> Vec<String> {
        self.regressions_against_with(
            baseline, tolerance, tolerance, tolerance, tolerance, tolerance,
        )
    }

    /// [`SmokeReport::regressions_against`] with separate *ops/sec*
    /// tolerances for the planner's `@planned` rows (a sampling pass and
    /// a data-dependent shard count), the runtime's `@streamed` rows
    /// (router/worker/merge threading and per-batch framing), the
    /// fused kernels' `@compiled` rows, and the serving plane's
    /// `@serving` rows (a multi-threaded closed-loop burst through the
    /// `Session` scheduler) — all of which carry more wall-clock variance
    /// than a pinned interpreted barrier spec. The deterministic
    /// bytes-pruned quality gate stays at the base `tolerance` for every
    /// family, suffixed rows included.
    pub fn regressions_against_with(
        &self,
        baseline: &SmokeReport,
        tolerance: f64,
        planner_tolerance: f64,
        streamed_tolerance: f64,
        compiled_tolerance: f64,
        serving_tolerance: f64,
    ) -> Vec<String> {
        let mut violations = Vec::new();
        // The deterministic metrics only mean anything on the same
        // workload; a seed/size mismatch is a misconfigured gate, not a
        // comparable run.
        if self.seed != baseline.seed {
            violations.push(format!(
                "workload seed mismatch: run has {}, baseline has {} — not comparable",
                self.seed, baseline.seed
            ));
            return violations;
        }
        if self.rows != baseline.rows {
            violations.push(format!(
                "workload size mismatch: run has {} rows, baseline has {} — not comparable",
                self.rows, baseline.rows
            ));
            return violations;
        }
        for base in &baseline.families {
            let Some(cur) = self.families.iter().find(|f| f.name == base.name) else {
                violations.push(format!("family {} disappeared from the smoke run", base.name));
                continue;
            };
            // Only the wall-clock floor loosens for @planned/@streamed
            // rows; the plan (and therefore bytes-pruned) is
            // deterministic in (seed, data), so the quality floor stays
            // at the base tolerance for every family.
            let ops_tolerance = if base.name.ends_with("@planned") {
                planner_tolerance
            } else if base.name.ends_with("@streamed") {
                streamed_tolerance
            } else if base.name.ends_with("@compiled") {
                compiled_tolerance
            } else if base.name.ends_with("@serving") {
                serving_tolerance
            } else {
                tolerance
            };
            let ops_floor = base.ops_per_sec * (1.0 - ops_tolerance);
            if cur.ops_per_sec < ops_floor {
                violations.push(format!(
                    "{}: ops/sec regressed {:.0} -> {:.0} (floor {:.0})",
                    base.name, base.ops_per_sec, cur.ops_per_sec, ops_floor
                ));
            }
            let bytes_floor = (base.bytes_pruned as f64 * (1.0 - tolerance)) as u64;
            if cur.bytes_pruned < bytes_floor {
                violations.push(format!(
                    "{}: bytes-pruned regressed {} -> {} (floor {})",
                    base.name, base.bytes_pruned, cur.bytes_pruned, bytes_floor
                ));
            }
            // The backend is what the run *reported* executing: a
            // `@compiled` row silently falling back to the interpreter is
            // a regression even when it happens to stay above the
            // wall-clock floor.
            if cur.backend != base.backend {
                violations.push(format!(
                    "{}: backend changed {} -> {} (silent fallback?)",
                    base.name, base.backend, cur.backend
                ));
            }
        }
        violations
    }

    /// The within-run compiled speedup gate: every `X@compiled` row is
    /// compared to its interpreted `X@shardsN` sibling *in this report*
    /// (same machine, same run — no cross-host wall-clock comparison).
    /// Violations are returned when the `distinct` family fails to reach
    /// `min_speedup`, or when *no* other family reaches it — the
    /// acceptance shape "distinct plus at least one aggregate family".
    pub fn compiled_speedup_violations(&self, min_speedup: f64) -> Vec<String> {
        let mut violations = Vec::new();
        let mut others_passing = 0usize;
        let mut others_total = 0usize;
        for f in self.families.iter().filter(|f| f.name.ends_with("@compiled")) {
            let family = f.name.trim_end_matches("@compiled");
            let sibling = format!("{family}@shards{SMOKE_SHARDS}");
            let Some(interp) = self.families.iter().find(|s| s.name == sibling) else {
                violations
                    .push(format!("{}: no interpreted @shards sibling to gate against", f.name));
                continue;
            };
            let speedup = f.ops_per_sec / interp.ops_per_sec.max(1e-12);
            if family == "distinct" {
                if speedup < min_speedup {
                    violations.push(format!(
                        "{}: {speedup:.2}x over {} — the distinct family must reach {min_speedup:.2}x",
                        f.name, interp.name
                    ));
                }
            } else {
                others_total += 1;
                if speedup >= min_speedup {
                    others_passing += 1;
                }
            }
        }
        if others_total > 0 && others_passing == 0 {
            violations.push(format!(
                "no aggregate family reached {min_speedup:.2}x compiled speedup over its interpreted sibling"
            ));
        }
        violations
    }

    /// A per-row before/after table against `baseline` — what the CI
    /// gate prints when it fails, so a red build shows every family's
    /// delta at a glance instead of only the violating rows.
    pub fn comparison_table(&self, baseline: &SmokeReport) -> String {
        let name_w = baseline
            .families
            .iter()
            .chain(&self.families)
            .map(|f| f.name.len())
            .max()
            .unwrap_or(6)
            .max("family".len());
        let mut out = String::new();
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>14}  {:>14}  {:>8}  {:>16}  {:>16}\n",
            "family",
            "backend",
            "base ops/s",
            "now ops/s",
            "delta",
            "base bytes-pruned",
            "now bytes-pruned"
        ));
        for base in &baseline.families {
            match self.families.iter().find(|f| f.name == base.name) {
                Some(cur) => {
                    let delta = if base.ops_per_sec > 0.0 {
                        (cur.ops_per_sec / base.ops_per_sec - 1.0) * 100.0
                    } else {
                        0.0
                    };
                    out.push_str(&format!(
                        "{:<name_w$}  {:>8}  {:>14.0}  {:>14.0}  {:>+7.1}%  {:>17}  {:>16}\n",
                        base.name,
                        cur.backend,
                        base.ops_per_sec,
                        cur.ops_per_sec,
                        delta,
                        base.bytes_pruned,
                        cur.bytes_pruned
                    ));
                }
                None => {
                    out.push_str(&format!(
                        "{:<name_w$}  {:>8}  {:>14.0}  {:>14}  {:>8}  {:>17}  {:>16}\n",
                        base.name,
                        base.backend,
                        base.ops_per_sec,
                        "missing",
                        "-",
                        base.bytes_pruned,
                        "-"
                    ));
                }
            }
        }
        for cur in
            self.families.iter().filter(|f| baseline.families.iter().all(|b| b.name != f.name))
        {
            out.push_str(&format!(
                "{:<name_w$}  {:>8}  {:>14}  {:>14.0}  {:>8}  {:>17}  {:>16}\n",
                cur.name, cur.backend, "(new)", cur.ops_per_sec, "-", "-", cur.bytes_pruned
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_covers_all_seven_families_plus_sharded_planned_and_streamed_runs() {
        let r = run_smoke(42, 2_000, 1);
        let names: Vec<&str> = r.families.iter().map(|f| f.name.as_str()).collect();
        for want in
            ["filter-count", "distinct", "topn", "groupby-max", "having-sum", "skyline", "join"]
        {
            assert!(names.contains(&want), "missing {want}");
        }
        assert!(names.iter().filter(|n| n.contains("@shards4")).count() == 3);
        // Every fixed-spec sharded row has its planned, streamed, and
        // compiled twins.
        assert!(names.iter().filter(|n| n.ends_with("@planned")).count() == 3);
        assert!(names.iter().filter(|n| n.ends_with("@streamed")).count() == 3);
        assert!(names.iter().filter(|n| n.ends_with("@compiled")).count() == 3);
        // The serving plane contributes its burst row, served by the
        // interpreted barrier pool it pins.
        assert!(names.contains(&"burst@serving"), "missing burst@serving");
        for f in &r.families {
            assert!(f.ops_per_sec > 0.0, "{}: zero throughput", f.name);
            // Honest attribution: only @compiled rows report the fused
            // kernels, and they must never silently fall back.
            let want = if f.name.ends_with("@compiled") { "compiled" } else { "interp" };
            assert_eq!(f.backend, want, "{}", f.name);
        }
    }

    #[test]
    fn compiled_rows_prune_exactly_like_their_interpreted_siblings() {
        // The contract gate proves this on the executor; this pins the
        // harness wiring — same presplit layout, same counters.
        let r = run_smoke(11, 2_000, 1);
        for f in r.families.iter().filter(|f| f.name.ends_with("@compiled")) {
            let sibling = f.name.replace("@compiled", &format!("@shards{SMOKE_SHARDS}"));
            let interp = r.families.iter().find(|s| s.name == sibling).expect("sibling row");
            assert_eq!(f.bytes_pruned, interp.bytes_pruned, "{}", f.name);
            assert_eq!(f.entries_to_master, interp.entries_to_master, "{}", f.name);
        }
    }

    #[test]
    fn compiled_speedup_gate_reads_sibling_rows() {
        let mut r = run_smoke(5, 1_000, 1);
        // Force known ratios: distinct 2x, groupby-max 1.1x, join 1.0x.
        let fake = |r: &mut SmokeReport, name: &str, ops: f64| {
            r.families.iter_mut().find(|f| f.name == name).expect(name).ops_per_sec = ops;
        };
        fake(&mut r, "distinct@shards4", 100.0);
        fake(&mut r, "distinct@compiled", 200.0);
        fake(&mut r, "groupby-max@shards4", 100.0);
        fake(&mut r, "groupby-max@compiled", 110.0);
        fake(&mut r, "join@shards4", 100.0);
        fake(&mut r, "join@compiled", 100.0);
        // 1.5x: distinct passes but no aggregate family does.
        let v = r.compiled_speedup_violations(1.5);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("no aggregate family"), "{v:?}");
        // 1.05x: distinct and groupby-max both clear it.
        assert!(r.compiled_speedup_violations(1.05).is_empty());
        // 3x: distinct itself fails too.
        let v = r.compiled_speedup_violations(3.0);
        assert!(v.iter().any(|m| m.contains("distinct@compiled")), "{v:?}");
    }

    #[test]
    fn backend_flip_is_a_regression() {
        let base = run_smoke(3, 1_000, 1);
        let mut flipped = base.clone();
        let idx = flipped
            .families
            .iter()
            .position(|f| f.name.ends_with("@compiled"))
            .expect("compiled row");
        flipped.families[idx].backend = "interp".to_string();
        let v = flipped.regressions_against(&base, 0.9);
        assert!(v.iter().any(|m| m.contains("backend changed")), "{v:?}");
    }

    #[test]
    fn bytes_pruned_is_deterministic_in_the_seed() {
        let a = run_smoke(7, 2_000, 1);
        let b = run_smoke(7, 2_000, 1);
        for (x, y) in a.families.iter().zip(&b.families) {
            assert_eq!(x.bytes_pruned, y.bytes_pruned, "{}", x.name);
            assert_eq!(x.entries_to_master, y.entries_to_master, "{}", x.name);
        }
    }

    #[test]
    fn json_round_trips() {
        let r = run_smoke(3, 1_000, 1);
        let parsed = SmokeReport::parse_json(&r.to_json()).expect("parse back");
        assert_eq!(parsed.seed, r.seed);
        assert_eq!(parsed.rows, r.rows);
        assert_eq!(parsed.families.len(), r.families.len());
        for (a, b) in parsed.families.iter().zip(&r.families) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.backend, b.backend);
            assert_eq!(a.bytes_pruned, b.bytes_pruned);
            assert!((a.ops_per_sec - b.ops_per_sec).abs() <= 0.1);
        }
        // A pre-backend-column baseline still parses: the field defaults
        // to the interpreter.
        let json = r.to_json();
        let legacy = json.lines().map(|l| {
            if let Some(at) = l.find("\"backend\": \"") {
                let end = l[at + 12..].find('"').unwrap() + at + 12;
                format!("{}{}", &l[..at], &l[end + 3..])
            } else {
                l.to_string()
            }
        });
        let legacy = legacy.collect::<Vec<_>>().join("\n");
        let parsed = SmokeReport::parse_json(&legacy).expect("legacy baseline parses");
        assert!(parsed.families.iter().all(|f| f.backend == "interp"));
    }

    #[test]
    fn telemetry_block_round_trips_and_tolerates_absence() {
        let r = run_smoke(9, 1_000, 1);
        let t = r.telemetry.as_ref().expect("smoke pass emits a telemetry block");
        assert_eq!(t.plan_cache_hit_rate, 0.75, "1 miss + 3 hits, deterministic");
        assert!(t.retransmits > 0, "the harsh seeded channel must force resends");
        assert!(t.queue_p99_seconds >= 0.0);
        let parsed = SmokeReport::parse_json(&r.to_json()).expect("parse back");
        let pt = parsed.telemetry.expect("block survives the round trip");
        assert_eq!(pt.retransmits, t.retransmits);
        assert_eq!(pt.plan_cache_hit_rate, t.plan_cache_hit_rate);
        assert!((pt.queue_p99_seconds - t.queue_p99_seconds).abs() < 1e-8);
        // A pre-telemetry baseline (no block) still parses, to None —
        // CI's checked-in baseline predates the plane.
        let stripped: String = r
            .to_json()
            .lines()
            .filter(|l| !l.contains("\"telemetry\""))
            .collect::<Vec<_>>()
            .join("\n")
            .replace("  ],", "  ]");
        let parsed = SmokeReport::parse_json(&stripped).expect("pre-telemetry baseline parses");
        assert!(parsed.telemetry.is_none());
    }

    #[test]
    fn regression_gate_catches_slowdowns_and_pruning_loss() {
        let base = run_smoke(3, 1_000, 1);
        // Same report: no violations.
        assert!(base.regressions_against(&base, 0.2).is_empty());
        // A 10× slowdown of one family trips the ops gate.
        let mut slow = base.clone();
        slow.families[0].ops_per_sec = base.families[0].ops_per_sec / 10.0;
        let v = slow.regressions_against(&base, 0.2);
        assert_eq!(v.len(), 1, "{v:?}");
        assert!(v[0].contains("ops/sec regressed"));
        // Halving bytes-pruned trips the quality gate.
        let mut weak = base.clone();
        weak.families[1].bytes_pruned = base.families[1].bytes_pruned / 2;
        let v = weak.regressions_against(&base, 0.2);
        assert!(v.iter().any(|m| m.contains("bytes-pruned regressed")), "{v:?}");
        // A vanished family is always a violation.
        let mut gone = base.clone();
        gone.families.remove(0);
        assert!(!gone.regressions_against(&base, 0.2).is_empty());
        // A different workload is never comparable, even if all metrics
        // happen to sit above the floors.
        let mut reseeded = base.clone();
        reseeded.seed = 999;
        let v = reseeded.regressions_against(&base, 0.2);
        assert!(v.len() == 1 && v[0].contains("seed mismatch"), "{v:?}");
        let mut resized = base.clone();
        resized.rows += 1;
        assert!(resized.regressions_against(&base, 0.2)[0].contains("size mismatch"));
    }

    #[test]
    fn planned_and_streamed_rows_gate_with_their_own_tolerances() {
        let base = run_smoke(3, 1_000, 1);
        let planned_idx = base
            .families
            .iter()
            .position(|f| f.name.ends_with("@planned"))
            .expect("planned family present");
        let streamed_idx = base
            .families
            .iter()
            .position(|f| f.name.ends_with("@streamed"))
            .expect("streamed family present");
        // A 30% planned-row slowdown trips the default gate but passes
        // once the planner tolerance is widened…
        let mut slow = base.clone();
        slow.families[planned_idx].ops_per_sec = base.families[planned_idx].ops_per_sec * 0.7;
        assert!(!slow.regressions_against(&base, 0.2).is_empty());
        assert!(slow.regressions_against_with(&base, 0.2, 0.4, 0.2, 0.2, 0.2).is_empty());
        // …the streamed knob excuses only @streamed rows…
        let mut slow_streamed = base.clone();
        slow_streamed.families[streamed_idx].ops_per_sec =
            base.families[streamed_idx].ops_per_sec * 0.7;
        assert!(!slow_streamed.regressions_against_with(&base, 0.2, 0.9, 0.2, 0.9, 0.9).is_empty());
        assert!(slow_streamed.regressions_against_with(&base, 0.2, 0.2, 0.4, 0.2, 0.2).is_empty());
        // …the compiled knob excuses only @compiled rows…
        let compiled_idx = base
            .families
            .iter()
            .position(|f| f.name.ends_with("@compiled"))
            .expect("compiled family present");
        let mut slow_compiled = base.clone();
        slow_compiled.families[compiled_idx].ops_per_sec =
            base.families[compiled_idx].ops_per_sec * 0.7;
        assert!(!slow_compiled.regressions_against_with(&base, 0.2, 0.9, 0.9, 0.2, 0.9).is_empty());
        assert!(slow_compiled.regressions_against_with(&base, 0.2, 0.2, 0.2, 0.4, 0.2).is_empty());
        // …the serving knob excuses only @serving rows…
        let serving_idx = base
            .families
            .iter()
            .position(|f| f.name.ends_with("@serving"))
            .expect("serving family present");
        let mut slow_serving = base.clone();
        slow_serving.families[serving_idx].ops_per_sec =
            base.families[serving_idx].ops_per_sec * 0.7;
        assert!(!slow_serving.regressions_against_with(&base, 0.2, 0.9, 0.9, 0.9, 0.2).is_empty());
        assert!(slow_serving.regressions_against_with(&base, 0.2, 0.2, 0.2, 0.2, 0.4).is_empty());
        // …while a fixed-spec row is never excused by any knob.
        let fixed_idx =
            base.families.iter().position(|f| f.name.contains("@shards")).expect("fixed family");
        let mut slow_fixed = base.clone();
        slow_fixed.families[fixed_idx].ops_per_sec = base.families[fixed_idx].ops_per_sec * 0.7;
        assert!(!slow_fixed.regressions_against_with(&base, 0.2, 0.9, 0.9, 0.9, 0.9).is_empty());
        // The deterministic quality gate binds every suffixed row at the
        // *base* tolerance — wide knobs never excuse lost pruning.
        for idx in [planned_idx, streamed_idx, compiled_idx] {
            let mut weak = base.clone();
            weak.families[idx].bytes_pruned = (base.families[idx].bytes_pruned as f64 * 0.7) as u64;
            let v = weak.regressions_against_with(&base, 0.2, 0.9, 0.9, 0.9, 0.9);
            assert!(v.iter().any(|m| m.contains("bytes-pruned regressed")), "{v:?}");
        }
    }

    #[test]
    fn comparison_table_lists_every_row_with_deltas() {
        let base = run_smoke(3, 1_000, 1);
        let mut cur = base.clone();
        cur.families[0].ops_per_sec *= 0.5;
        let gone = cur.families.pop().expect("non-empty");
        cur.families.push(SmokeFamily {
            name: "brand-new".into(),
            backend: "interp".into(),
            ops_per_sec: 1.0,
            bytes_pruned: 0,
            entries_to_master: 0,
        });
        let table = cur.comparison_table(&base);
        for f in &base.families[..base.families.len() - 1] {
            assert!(table.contains(&f.name), "missing row for {}", f.name);
        }
        assert!(table.contains("-50.0%"), "halved row must show its delta:\n{table}");
        let gone_line = table.lines().find(|l| l.contains(&gone.name)).expect("vanished row");
        assert!(gone_line.contains("missing"), "{gone_line}");
        let new_line = table.lines().find(|l| l.contains("brand-new")).expect("new row");
        assert!(new_line.contains("(new)"), "{new_line}");
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(SmokeReport::parse_json("not json at all").is_err());
        assert!(SmokeReport::parse_json("{}").is_err());
    }
}

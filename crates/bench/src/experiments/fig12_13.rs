//! Figures 12 & 13 — processing a query on the master server vs. on the
//! switch's management CPU (Appendix F.1).
//!
//! NetAccel overflows work the dataplane cannot finish to the switch CPU;
//! the paper shows that CPU is far weaker than a server and sits behind a
//! thin dataplane→CPU channel, so offloading the *remainder to the master*
//! (Cheetah's choice) scales and offloading to the switch CPU does not.
//!
//! Server times are measured by running the real `cheetah-db` operators;
//! switch-CPU times apply [`SwitchCpuModel`]
//! (slowdown + channel transfer) to the measured baseline.

use crate::report::secs;
use crate::{Report, RunCtx, Scale};
use cheetah_db::ops;
use cheetah_db::table::{Column, Partition};
use cheetah_switch::hash::mix64;
use cheetah_switch::SwitchCpuModel;
use std::time::Instant;

fn keyed_partition(rows: usize, keys: u64, seed: u64) -> Partition {
    let mut x = seed;
    let mut ks = Vec::with_capacity(rows);
    let mut vs = Vec::with_capacity(rows);
    for _ in 0..rows {
        x = mix64(x);
        ks.push(format!("k{}", x % keys));
        x = mix64(x);
        vs.push((x % 10_000) as i64);
    }
    Partition::new(vec![Column::Str(ks), Column::Int(vs)])
}

fn one_figure(id: &'static str, title: &str, scale: Scale, op: impl Fn(&Partition)) -> Report {
    let cpu = SwitchCpuModel::default_model();
    let mut r = Report::new(id, title, &["rows", "server", "switch_cpu", "slowdown"]);
    let base = scale.entries(50_000, 2_000_000);
    for mult in [1usize, 2, 4, 8] {
        let rows = base * mult;
        let part = keyed_partition(rows, 1_000, 42);
        let t0 = Instant::now();
        op(&part);
        let server = t0.elapsed().as_secs_f64();
        let bytes = rows as u64 * 16;
        let switch_cpu = cpu.processing_seconds(server, bytes);
        r.row(vec![
            rows.to_string(),
            secs(server),
            secs(switch_cpu),
            format!("{:.1}x", switch_cpu / server.max(1e-12)),
        ]);
    }
    r.note(format!(
        "switch CPU model: {}x core slowdown + {} Gbps dataplane→CPU channel",
        cpu.slowdown, cpu.channel_gbps
    ));
    r
}

/// Build both figures.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let scale = ctx.scale;
    vec![
        one_figure("fig12", "Group-By processing: server vs switch CPU", scale, |p| {
            std::hint::black_box(ops::partial_groupby_max(0, 1, p));
        }),
        one_figure("fig13", "Distinct processing: server vs switch CPU", scale, |p| {
            std::hint::black_box(ops::partial_distinct(0, p));
        }),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn switch_cpu_is_always_slower() {
        for r in run(&RunCtx::quick()) {
            for row in &r.rows {
                let slowdown: f64 = row[3].strip_suffix('x').unwrap().parse().expect("slowdown");
                assert!(slowdown > 1.0, "{}: {row:?}", r.id);
            }
        }
    }

    #[test]
    fn both_figures_emitted() {
        let rs = run(&RunCtx::quick());
        assert_eq!(rs.len(), 2);
        assert_eq!(rs[0].id, "fig12");
        assert_eq!(rs[1].id, "fig13");
    }
}

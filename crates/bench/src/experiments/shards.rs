//! The sharded-execution sweep: 1→16 workers on a zipf-skewed table.
//!
//! Not a paper figure — the paper measures a fixed five-worker rack — but
//! the axis its deployment model (§2) implies and §4.6's master-bottleneck
//! analysis predicts: adding shards shrinks the (slowest) worker phase
//! while the merged survivor streams raise the master's effective arrival
//! rate until ingest, not worker compute, bounds completion. The workload
//! is deliberately skewed ([`SkewedTableConfig`]) so the `max(shard)`
//! worker bound is visibly worse than `total/N`.
//!
//! Every row also re-verifies the shard contract inline: the merged
//! output must equal the unsharded run's, or the harness panics.

use crate::report::secs;
use crate::{Report, RunCtx};
use cheetah_core::ShardPartitioner;
use cheetah_db::{Cluster, DbQuery, ShardSpec};
use cheetah_workloads::SkewedTableConfig;

const LINK_GBPS: f64 = 10.0;

/// Build the sweep.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let scale = ctx.scale;
    let rows = scale.entries(20_000, 2_000_000);
    let table = SkewedTableConfig {
        rows,
        partitions: 8,
        partition_skew: 1.0,
        keys: 400,
        key_skew: 1.1,
        seed: 0x51A2D,
    }
    .build();
    let right = SkewedTableConfig {
        rows: rows / 2,
        partitions: 4,
        partition_skew: 0.8,
        keys: 400,
        key_skew: 0.9,
        seed: 0xB0B,
    }
    .build();
    let cluster = Cluster::default();
    let families: Vec<(&str, DbQuery)> = vec![
        ("distinct", DbQuery::Distinct { col: 0 }),
        ("groupby-max", DbQuery::GroupByMax { key_col: 0, val_col: 1 }),
        ("topn", DbQuery::TopN { order_col: 1, n: 100 }),
        ("join", DbQuery::Join { left_key: 0, right_key: 0 }),
    ];

    let mut r = Report::new(
        "shards",
        "Sharded execution sweep (zipf-skewed load, hash partitioner)",
        &[
            "shards",
            "query",
            "completion",
            "worker",
            "master",
            "ingest_model",
            "entries_to_master",
            "max_shard_rows",
        ],
    );
    let planner = ctx.planner();
    for (name, q) in &families {
        let right_of = q.is_binary().then_some(&right);
        let single = cluster.run_cheetah(q, &table, right_of).expect("plan fits");
        let mut record = |label: String, sharded: &cheetah_db::ShardedRun| {
            assert_eq!(
                single.output, sharded.output,
                "shard contract violated for {name} at {label} shards"
            );
            let b = &sharded.breakdown;
            r.row(vec![
                label,
                (*name).to_string(),
                secs(b.completion_seconds(LINK_GBPS)),
                secs(b.worker_seconds),
                secs(b.master_seconds),
                secs(b.master_ingest_seconds),
                b.entries_to_master.to_string(),
                sharded.per_shard.iter().map(|s| s.rows).max().unwrap_or(0).to_string(),
            ]);
        };
        for &n in &ctx.shards {
            let spec = ShardSpec::new(n, ShardPartitioner::Hash);
            let sharded =
                cluster.run_cheetah_sharded(q, &table, right_of, &spec).expect("plan fits");
            record(n.to_string(), &sharded);
        }
        // The planned comparison row: the planner searches the same
        // shard range the sweep covers (RunCtx-driven).
        let planned = cluster.run_cheetah_planned(q, &table, right_of, &planner).expect("fits");
        let plan = planned.plan.as_ref().expect("planned run records its plan");
        record(format!("planned:{}@{}", plan.partitioner().name(), plan.shards()), &planned);
    }
    r.note(format!(
        "left {} rows (zipf partition skew 1.0, key skew 1.1); right {} rows; outputs verified \
         equal to the unsharded run at every point",
        table.rows(),
        right.rows()
    ));
    r.note("ingest_model = MasterIngestModel with shard fan-in (§4.6), arrival capped at 40 M/s");
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn sweep_covers_every_family_at_every_shard_count() {
        let ctx = RunCtx { scale: Scale::Quick, shards: vec![1, 4] };
        let r = &run(&ctx)[0];
        // 4 families × (2 shard counts + 1 planned comparison row).
        assert_eq!(r.rows.len(), 12);
        for row in &r.rows {
            assert!(row[0] == "1" || row[0] == "4" || row[0].starts_with("planned:"), "{row:?}");
        }
    }

    #[test]
    fn shard_axis_is_honoured() {
        let ctx = RunCtx { scale: Scale::Quick, shards: vec![2] };
        let r = &run(&ctx)[0];
        assert!(r.rows.iter().all(|row| row[0] == "2" || row[0].starts_with("planned:")));
        // Every family carries exactly one planned row.
        assert_eq!(r.rows.iter().filter(|row| row[0].starts_with("planned:")).count(), 4);
    }

    #[test]
    fn skew_makes_the_hottest_shard_exceed_the_mean() {
        let ctx = RunCtx { scale: Scale::Quick, shards: vec![4] };
        let r = &run(&ctx)[0];
        // distinct routes by the zipf-skewed key: its hottest shard must
        // hold well over 1/4 of the rows.
        let distinct = r.rows.iter().find(|row| row[1] == "distinct").expect("row");
        let max_rows: u64 = distinct[7].parse().unwrap();
        let total: u64 = 20_000;
        assert!(max_rows > total / 4, "hot shard {max_rows} of {total}");
    }
}

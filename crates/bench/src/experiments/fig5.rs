//! Figure 5 — completion time of Spark vs Cheetah across the benchmark
//! queries.
//!
//! Nine bars in the paper: BigData A (filtering), BigData B (the offloaded
//! group-by, whose switch-prunable form is the SUM+HAVING of benchmark
//! query 7), BigData A+B, TPC-H Q3 (we reproduce the offloaded join, which
//! the paper says takes 67% of the query), and the five standalone
//! operator queries. For each: Spark's first run, Spark's subsequent runs,
//! and Cheetah.
//!
//! Phase times are measured on real work; transfers are modelled at the
//! paper's 10G NIC rate. "Spark (1st run)" applies the paper's observed
//! first-run penalty (indexing + JIT; §8.2.2 discards it for the scaling
//! studies) as a documented constant factor on the measured run.

use crate::report::secs;
use crate::{Report, RunCtx};
use cheetah_db::{Cluster, DbPredicate, DbQuery, IntCmp};
use cheetah_workloads::bigdata::BigDataConfig;
use cheetah_workloads::tpch::TpchConfig;

/// First-run penalty: the paper's Figure 5 shows 1st runs 1.5–2.5× slower
/// than subsequent runs (caching/indexing/JIT); we apply the midpoint.
pub const FIRST_RUN_FACTOR: f64 = 2.0;

/// Link rate for the completion model (the paper's default NIC cap).
pub const LINK_GBPS: f64 = 10.0;

struct Row {
    name: &'static str,
    spark: f64,
    cheetah: f64,
    pruned_pct: f64,
}

fn run_pair(
    cluster: &Cluster,
    q: &DbQuery,
    left: &cheetah_db::Table,
    right: Option<&cheetah_db::Table>,
    name: &'static str,
) -> Row {
    // Best of three: discards allocator/thread warm-up noise, like any
    // benchmarking harness (Spark's own first run is modelled separately).
    let mut spark = f64::INFINITY;
    let mut cheetah = f64::INFINITY;
    let mut pruned_pct = 0.0;
    for _ in 0..3 {
        let base = cluster.run_baseline(q, left, right);
        let chee = cluster.run_cheetah(q, left, right).expect("cheetah plan");
        assert_eq!(base.output, chee.output, "{name}: pruning changed the output");
        spark = spark.min(base.breakdown.completion_seconds(LINK_GBPS));
        cheetah = cheetah.min(chee.breakdown.completion_seconds(LINK_GBPS));
        pruned_pct = chee.switch_stats.pruned_fraction() * 100.0;
    }
    Row { name, spark, cheetah, pruned_pct }
}

/// Build the figure.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let scale = ctx.scale;
    let bd = BigDataConfig {
        rankings_rows: scale.entries(60_000, 2_000_000),
        uservisits_rows: scale.entries(120_000, 6_000_000),
        ..Default::default()
    };
    let rankings = bd.rankings();
    let uservisits = bd.uservisits();
    let tpch = TpchConfig {
        orders: scale.entries(15_000, 500_000),
        lineitems: scale.entries(60_000, 2_000_000),
        ..Default::default()
    };
    let orders = tpch.orders();
    let lineitem = tpch.lineitem();
    let cluster = Cluster::default();

    let query_a = DbQuery::FilterCount {
        pred: DbPredicate::CmpInt {
            col: BigDataConfig::RANKINGS_AVG_DURATION,
            op: IntCmp::Lt,
            lit: 10,
        },
    };
    // Threshold scaled so only the head of the zipfian language
    // distribution qualifies (the paper's query asks for > $1M revenue).
    let query_b = DbQuery::HavingSum {
        key_col: BigDataConfig::UV_LANGUAGE,
        val_col: BigDataConfig::UV_AD_REVENUE,
        threshold: (bd.uservisits_rows as i64) * 400,
    };

    let a = run_pair(&cluster, &query_a, &rankings, None, "BigData A");
    let b = run_pair(&cluster, &query_b, &uservisits, None, "BigData B");
    let ab = Row {
        name: "BigData A+B",
        spark: a.spark + b.spark,
        cheetah: a.cheetah + b.cheetah,
        pruned_pct: (a.pruned_pct + b.pruned_pct) / 2.0,
    };
    let q3 = run_pair(
        &cluster,
        &DbQuery::Join { left_key: 0, right_key: 0 },
        &orders,
        Some(&lineitem),
        "TPC-H Q3 (join)",
    );
    let distinct = run_pair(
        &cluster,
        &DbQuery::Distinct { col: BigDataConfig::UV_USER_AGENT },
        &uservisits,
        None,
        "Distinct",
    );
    let groupby = run_pair(
        &cluster,
        &DbQuery::GroupByMax {
            key_col: BigDataConfig::UV_USER_AGENT,
            val_col: BigDataConfig::UV_AD_REVENUE,
        },
        &uservisits,
        None,
        "GroupBy (Max)",
    );
    let skyline = run_pair(
        &cluster,
        &DbQuery::Skyline {
            cols: vec![BigDataConfig::RANKINGS_PAGE_RANK, BigDataConfig::RANKINGS_AVG_DURATION],
        },
        &rankings,
        None,
        "Skyline",
    );
    let topn = run_pair(
        &cluster,
        &DbQuery::TopN { order_col: BigDataConfig::UV_AD_REVENUE, n: 250 },
        &uservisits,
        None,
        "Top-N",
    );
    // The paper took 10% subsets for the join because destURLs match
    // rankings 100%; we get the same effect by widening the URL universe
    // so only ~25% of visits hit a ranked page.
    let bd_join = BigDataConfig { url_universe: Some(bd.rankings_rows * 4), ..bd.clone() };
    let uservisits_join = bd_join.uservisits();
    let join = run_pair(
        &cluster,
        &DbQuery::Join {
            left_key: BigDataConfig::UV_DEST_URL,
            right_key: BigDataConfig::RANKINGS_PAGE_URL,
        },
        &uservisits_join,
        Some(&rankings),
        "Join",
    );

    let mut r = Report::new(
        "fig5",
        "Completion time: Spark (1st run) / Spark / Cheetah, per query",
        &["query", "spark_1st", "spark", "cheetah", "cheetah_speedup", "pruned_%"],
    );
    for row in [a, b, ab, q3, distinct, groupby, skyline, topn, join] {
        r.row(vec![
            row.name.to_string(),
            secs(row.spark * FIRST_RUN_FACTOR),
            secs(row.spark),
            secs(row.cheetah),
            format!("{:.2}x", row.spark / row.cheetah.max(1e-12)),
            format!("{:.1}", row.pruned_pct),
        ]);
    }
    r.note(format!(
        "rankings = {} rows, uservisits = {} rows, link = {LINK_GBPS} Gbps",
        bd.rankings_rows, bd.uservisits_rows
    ));
    r.note(format!(
        "spark_1st = measured × {FIRST_RUN_FACTOR} (paper-observed indexing/JIT penalty)"
    ));
    r.note("BigData B reproduced as its switch-prunable SUM+HAVING form (benchmark query 7)");
    r.note("A+B = sum of the two runs; the paper additionally pipelines CWorker serialization");
    r.note("TPC-H Q3 row is the offloaded join (67% of Q3 per §8.1); outputs verified equal");
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_nine_bars_present_and_outputs_equal() {
        // run() internally asserts output equality for every query.
        let r = &run(&RunCtx::quick())[0];
        assert_eq!(r.rows.len(), 9);
        for name in [
            "BigData A",
            "BigData B",
            "BigData A+B",
            "TPC-H Q3 (join)",
            "Distinct",
            "GroupBy (Max)",
            "Skyline",
            "Top-N",
            "Join",
        ] {
            assert!(r.rows.iter().any(|row| row[0] == name), "missing {name}");
        }
    }

    #[test]
    fn aggregation_queries_prune_heavily() {
        let r = &run(&RunCtx::quick())[0];
        for name in ["Distinct", "GroupBy (Max)", "Skyline"] {
            let row = r.rows.iter().find(|row| row[0] == name).expect("row");
            let pruned: f64 = row[5].parse().expect("pruned %");
            assert!(pruned > 90.0, "{name} pruned only {pruned}%");
        }
        // Top-N's randomized matrix needs m ≫ w·d (Theorem 3); at quick
        // scale the stream is only ~7× the matrix, so expect a weaker rate.
        let row = r.rows.iter().find(|row| row[0] == "Top-N").expect("row");
        let pruned: f64 = row[5].parse().expect("pruned %");
        assert!(pruned > 50.0, "Top-N pruned only {pruned}%");
    }
}

//! One module per paper artifact, plus the design-choice ablations and
//! the sharded-execution sweep.

pub mod ablations;
pub mod chooser;
pub mod crossover;
pub mod fabric;
pub mod fig10;
pub mod fig11;
pub mod fig12_13;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod planner;
pub mod runtime;
pub mod serving;
pub mod shards;
pub mod table2;
pub mod table3;

use crate::{Report, RunCtx};

/// An experiment entry point: run context in, one report per panel out.
pub type ExperimentFn = fn(&RunCtx) -> Vec<Report>;

/// Every experiment, in paper order: `(id, runner)`.
pub fn all() -> Vec<(&'static str, ExperimentFn)> {
    vec![
        ("table2", table2::run as ExperimentFn),
        ("table3", table3::run),
        ("fig5", fig5::run),
        ("fig6", fig6::run),
        ("fig7", fig7::run),
        ("fig8", fig8::run),
        ("fig9", fig9::run),
        ("fig10", fig10::run),
        ("fig11", fig11::run),
        ("fig12_13", fig12_13::run),
        ("ablations", ablations::run),
        ("shards", shards::run),
        ("planner", planner::run),
        ("runtime", runtime::run),
        ("crossover", crossover::run),
        ("chooser", chooser::run),
        ("serving", serving::run),
        ("fabric", fabric::run),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_covers_every_artifact() {
        let ids: Vec<&str> = all().iter().map(|(id, _)| *id).collect();
        for want in [
            "table2",
            "table3",
            "fig5",
            "fig6",
            "fig7",
            "fig8",
            "fig9",
            "fig10",
            "fig11",
            "fig12_13",
            "shards",
            "planner",
            "runtime",
            "crossover",
            "chooser",
            "serving",
            "fabric",
        ] {
            assert!(ids.contains(&want), "missing experiment {want}");
        }
    }
}

//! The online path chooser under skew: the same query replayed on the
//! planner-adversarial workloads, the UCB1 bandit picking which
//! (execution path × pruning backend) arm runs each round.
//!
//! Layout is resident, as everywhere else in the harness: routing keys,
//! the fitted sharder, the shard split, and the stream layout are built
//! once per workload; each round pays only execution, so the costs the
//! bandit observes are the costs the arms actually differ on. A
//! round-robin reference phase (every arm played the same number of
//! times) establishes each arm's mean completion cost independently of
//! the bandit's choices — the table reports both, and the regret line
//! compares the bandit's cumulative cost against replaying the
//! always-interpreted arm for the same number of rounds.

use crate::report::secs;
use crate::{Report, RunCtx, Scale};
use cheetah_core::ShardPartitioner;
use cheetah_db::{
    fixed_sharder, route_range, routing_keys, ChooserArm, Cluster, DbQuery, ExecBackend, ExecPath,
    PathChooser, PlanDecision, ShardSpec, Table,
};
use cheetah_net::ExecBreakdown;
use cheetah_runtime::{PooledExecution, StreamLayout, StreamSpec, StreamedExecution};
use cheetah_workloads::PlannerAdversary;
use std::sync::Arc;

/// Link rate the chooser prices completions over — the crossover gate's
/// 10G, so arm costs line up with the rest of the harness.
pub const CHOOSER_LINK_GBPS: f64 = 10.0;

/// Shards every arm runs on.
const CHOOSER_SHARDS: usize = 4;

/// One workload held resident: both cluster twins, the pre-split shards
/// for the barrier arms, and the stream layout for the streamed arms.
struct ResidentWorkload {
    q: DbQuery,
    interp: Cluster,
    compiled: Cluster,
    spec: ShardSpec,
    shards: Vec<Arc<Table>>,
    layout: StreamLayout,
}

impl ResidentWorkload {
    fn new(adversary: PlannerAdversary, rows: usize, seed: u64) -> Self {
        let q = DbQuery::GroupByMax { key_col: 0, val_col: 1 };
        let interp = Cluster::default();
        let compiled = interp.clone().with_backend(ExecBackend::Compiled);
        let table = adversary.table(rows, CHOOSER_SHARDS, seed);
        let spec = ShardSpec::new(CHOOSER_SHARDS, ShardPartitioner::Hash);
        let keys = routing_keys(&q, 0, &table, interp.tuning.seed);
        let sharder = fixed_sharder(&spec, interp.tuning.seed, &[&keys]);
        let shards: Vec<Arc<Table>> = route_range(&table, &keys, &sharder, 0, table.rows())
            .into_iter()
            .map(Arc::new)
            .collect();
        let layout = interp.plan_stream(&q, &table, None, &StreamSpec::fixed(spec));
        Self { q, interp, compiled, spec, shards, layout }
    }

    /// Execute one round on `arm` and return its breakdown.
    fn play(&self, arm: ChooserArm) -> ExecBreakdown {
        let cluster = match arm.backend {
            ExecBackend::Interpreted => &self.interp,
            ExecBackend::Compiled => &self.compiled,
        };
        match arm.path {
            ExecPath::BarrierPooled => {
                cluster
                    .run_cheetah_presplit(
                        &self.q,
                        &self.shards,
                        None,
                        &self.spec.ingest,
                        PlanDecision::Fixed(self.spec.partitioner),
                        None,
                    )
                    .expect("plan fits")
                    .breakdown
            }
            ExecPath::StreamedResident => {
                cluster
                    .run_cheetah_streamed_resident(&self.q, &self.layout)
                    .expect("fits")
                    .breakdown
            }
        }
    }
}

/// What one workload's session produced: the converged bandit, the
/// reference means, and the round count — everything the report (and the
/// convergence test) reads.
struct Session {
    name: String,
    chooser: PathChooser,
    reference: Vec<(ChooserArm, f64)>,
    rounds: usize,
}

impl Session {
    /// The reference-cheapest arm — ground truth the bandit should find.
    fn reference_best(&self) -> (ChooserArm, f64) {
        *self
            .reference
            .iter()
            .min_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite costs"))
            .expect("four arms")
    }

    /// Mean reference cost of the always-interpreted barrier arm.
    fn always_interpreted_mean(&self) -> f64 {
        self.reference
            .iter()
            .find(|(arm, _)| *arm == PathChooser::ARMS[0])
            .map(|(_, c)| *c)
            .expect("pooled/interp is a reference arm")
    }
}

fn run_session(
    adversary: PlannerAdversary,
    rows: usize,
    seed: u64,
    ref_reps: usize,
    rounds: usize,
) -> Session {
    let w = ResidentWorkload::new(adversary, rows, seed);
    // Reference phase: round-robin so every arm sees the same machine
    // drift, means independent of the bandit's exploitation.
    let mut totals = [0.0f64; 4];
    for _ in 0..ref_reps {
        for (i, arm) in PathChooser::ARMS.iter().enumerate() {
            totals[i] += w.play(*arm).completion_seconds(CHOOSER_LINK_GBPS);
        }
    }
    let reference: Vec<(ChooserArm, f64)> =
        PathChooser::ARMS.iter().zip(totals).map(|(a, t)| (*a, t / ref_reps as f64)).collect();
    // Bandit phase: the chooser picks, observes, repeats.
    let mut chooser = PathChooser::new(CHOOSER_LINK_GBPS);
    for _ in 0..rounds {
        let arm = chooser.next();
        let breakdown = w.play(arm);
        chooser.observe(arm, &breakdown);
    }
    Session { name: adversary.name(), chooser, reference, rounds }
}

/// Run the chooser convergence experiment on both skewed adversaries.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let (rows, ref_reps, rounds) = match ctx.scale {
        Scale::Quick => (6_000, 3, 40),
        Scale::Full => (30_000, 5, 96),
    };
    let mut report = Report::new(
        "chooser",
        format!("Online path chooser under skew ({rows} rows, {rounds} bandit rounds, {CHOOSER_LINK_GBPS:.0}G)"),
        &["workload", "arm", "plays", "bandit mean", "reference mean", "verdict"],
    );
    for adversary in [PlannerAdversary::Zipf(1.5), PlannerAdversary::SingleHotKey] {
        let s = run_session(adversary, rows, 42, ref_reps, rounds);
        let (ref_best, ref_best_cost) = s.reference_best();
        let converged = s.chooser.best();
        for (arm, ref_mean) in &s.reference {
            let bandit_mean = s.chooser.mean_cost(*arm);
            let mut verdict = String::new();
            if *arm == converged {
                verdict.push_str("<- bandit best");
            }
            if *arm == ref_best {
                verdict.push_str(if verdict.is_empty() {
                    "<- reference best"
                } else {
                    " = reference best"
                });
            }
            report.row(vec![
                s.name.clone(),
                arm.label(),
                s.chooser.plays_of(*arm).to_string(),
                bandit_mean.map_or("-".into(), secs),
                secs(*ref_mean),
                verdict,
            ]);
        }
        let bandit_total = s.chooser.cumulative_cost();
        let always_interp_total = s.always_interpreted_mean() * s.rounds as f64;
        report.note(format!(
            "{}: bandit converged to {} (reference best {} at {}); cumulative cost {} vs always-interpreted {} over {} rounds",
            s.name,
            converged.label(),
            ref_best.label(),
            secs(ref_best_cost),
            secs(bandit_total),
            secs(always_interp_total),
            s.rounds,
        ));
    }
    report.note(
        "layout (keys, sharder, shard split, stream units) is resident for every arm; \
         rounds pay execution only, so arm costs differ on path and backend alone",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One session's convergence properties, as a checkable result so
    /// the test can retry: under a parallel `cargo test --workspace` the
    /// reference phase and the bandit phase run beneath different
    /// machine contention, and a single unlucky session can rank
    /// near-tied arms differently across the two phases.
    fn check_session(s: &Session) -> Result<(), String> {
        let (_, ref_best_cost) = s.reference_best();
        // Convergence: the arm the bandit settled on must be
        // near-cheapest by the independent reference means — exact arm
        // identity can tie within noise on a busy runner, closeness in
        // cost cannot.
        let converged = s.chooser.best();
        let converged_ref = s
            .reference
            .iter()
            .find(|(a, _)| *a == converged)
            .map(|(_, c)| *c)
            .expect("converged arm has a reference mean");
        if converged_ref > ref_best_cost * 1.3 {
            return Err(format!(
                "bandit settled on {} at reference cost {converged_ref:.6}s, \
                 but the reference-cheapest arm costs {ref_best_cost:.6}s",
                converged.label(),
            ));
        }
        // Regret: the bandit's cumulative cost (exploration included)
        // must beat replaying the always-interpreted barrier arm — with
        // slack for the four forced exploration pulls.
        let bandit_total = s.chooser.cumulative_cost();
        let always_interp = s.always_interpreted_mean() * s.rounds as f64;
        if bandit_total > always_interp * 1.15 {
            return Err(format!(
                "bandit paid {bandit_total:.6}s over {} rounds, \
                 always-interpreted would pay {always_interp:.6}s",
                s.rounds,
            ));
        }
        // The bandit exploited: whichever arm the reference phase ranks
        // worst must have lost its round-robin share (rounds/4) to the
        // cheap arms. Near-tied arms can swap ranks within noise — the
        // *worst* one cannot climb into contention.
        let (ref_worst, _) = *s
            .reference
            .iter()
            .max_by(|(_, a), (_, b)| a.partial_cmp(b).expect("finite costs"))
            .expect("four arms");
        if s.chooser.plays_of(ref_worst) >= (s.rounds as u64) / 5 {
            return Err(format!(
                "worst arm {} kept {} of {} rounds — no better than round-robin",
                ref_worst.label(),
                s.chooser.plays_of(ref_worst),
                s.rounds,
            ));
        }
        Ok(())
    }

    #[test]
    fn bandit_converges_near_the_cheapest_arm_and_beats_always_interpreted() {
        let mut failures = Vec::new();
        for _ in 0..3 {
            let s = run_session(PlannerAdversary::Zipf(1.5), 4_000, 42, 3, 40);
            match check_session(&s) {
                Ok(()) => return,
                Err(e) => failures.push(e),
            }
        }
        panic!("no session converged in 3 attempts:\n{}", failures.join("\n"));
    }

    #[test]
    fn report_lists_all_four_arms_per_workload() {
        let mut ctx = RunCtx::quick();
        ctx.shards = vec![CHOOSER_SHARDS];
        let reports = run(&ctx);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].rows.len(), 2 * PathChooser::ARMS.len());
        for label in ["pooled/interp", "pooled/compiled", "streamed/interp", "streamed/compiled"] {
            assert!(reports[0].rows.iter().any(|r| r[1] == label), "missing arm row {label}");
        }
    }
}

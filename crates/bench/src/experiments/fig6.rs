//! Figure 6 — the effect of worker count and data scale (DISTINCT).
//!
//! 6a fixes the dataset and varies the number of workers (partitions);
//! 6b fixes five workers and varies the number of entries. The paper's
//! findings: Cheetah beats Spark at every point, and the gap *widens* with
//! data scale (6b) while staying roughly constant across worker counts
//! (6a). Spark's first run is discarded, as in §8.2.2.

use crate::report::secs;
use crate::{Report, RunCtx, Scale};
use cheetah_db::{Cluster, DbQuery};
use cheetah_workloads::bigdata::BigDataConfig;

const LINK_GBPS: f64 = 10.0;

fn distinct_query() -> DbQuery {
    DbQuery::Distinct { col: BigDataConfig::UV_USER_AGENT }
}

/// Best of three runs (discard warm-up noise); asserts output equality.
fn best_of_3(cluster: &Cluster, q: &DbQuery, t: &cheetah_db::Table) -> (f64, f64) {
    let mut s = f64::INFINITY;
    let mut c = f64::INFINITY;
    for _ in 0..3 {
        let base = cluster.run_baseline(q, t, None);
        let chee = cluster.run_cheetah(q, t, None).expect("plan");
        assert_eq!(base.output, chee.output);
        s = s.min(base.breakdown.completion_seconds(LINK_GBPS));
        c = c.min(chee.breakdown.completion_seconds(LINK_GBPS));
    }
    (s, c)
}

/// Panel (a): vary the number of workers over a fixed dataset.
pub fn panel_a(scale: Scale) -> Report {
    let bd =
        BigDataConfig { uservisits_rows: scale.entries(100_000, 5_000_000), ..Default::default() };
    let table = bd.uservisits();
    let cluster = Cluster::default();
    let q = distinct_query();
    let mut r = Report::new(
        "fig6a",
        "DISTINCT completion vs number of workers (fixed total entries)",
        &["workers", "spark", "cheetah"],
    );
    for workers in 1..=5usize {
        let t = table.repartition(workers);
        let (s, c) = best_of_3(&cluster, &q, &t);
        r.row(vec![workers.to_string(), secs(s), secs(c)]);
    }
    r.note(format!("{} total entries; Spark first run discarded", bd.uservisits_rows));
    r
}

/// Panel (b): vary the number of entries at five workers.
pub fn panel_b(scale: Scale) -> Report {
    let base_rows = scale.entries(100_000, 10_000_000);
    let cluster = Cluster::default();
    let q = distinct_query();
    let mut r = Report::new(
        "fig6b",
        "DISTINCT completion vs number of entries (5 workers)",
        &["entries", "spark", "cheetah", "gap"],
    );
    for mult in [1usize, 2, 3] {
        let bd = BigDataConfig { uservisits_rows: base_rows * mult, ..Default::default() };
        let t = bd.uservisits();
        let (s, c) = best_of_3(&cluster, &q, &t);
        r.row(vec![(base_rows * mult).to_string(), secs(s), secs(c), secs(s - c)]);
    }
    r.note("the paper's 6b: the Spark–Cheetah gap widens as the data grows");
    r
}

/// Both panels.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let scale = ctx.scale;
    vec![panel_a(scale), panel_b(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn panels_have_expected_shape() {
        let rs = run(&RunCtx::quick());
        assert_eq!(rs[0].rows.len(), 5, "worker sweep 1..=5");
        assert_eq!(rs[1].rows.len(), 3, "three data scales");
    }
}

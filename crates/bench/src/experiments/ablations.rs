//! Ablations — head-to-head comparisons of the design choices the paper
//! (and DESIGN.md) call out. Not figures from the paper; these quantify
//! *why* each mechanism was chosen.
//!
//! 1. **Eviction policy** (DISTINCT): LRU's rolling refresh vs FIFO across
//!    workload skews — LRU is the paper's default because hot keys stay
//!    cached.
//! 2. **Projection** (SKYLINE): SUM vs APH across dimension-range skew —
//!    §4.4 argues product ordering resists range bias.
//! 3. **Multi-entry packets** (§9): effective entry rate and pruning
//!    parity of batched DISTINCT vs single-entry.
//! 4. **Switch hierarchy** (§9): end-to-end unpruned fraction vs leaf
//!    count at fixed per-device resources.

use crate::report::frac;
use crate::{Report, RunCtx, Scale};
use cheetah_core::batch::{effective_entry_rate, BatchedDistinct, BatchedDistinctConfig};
use cheetah_core::hierarchy::MultiSwitch;
use cheetah_core::{
    DistinctConfig, DistinctPruner, EvictionPolicy, QuerySpec, SkylineConfig, SkylinePolicy,
    SkylinePruner, StandalonePruner,
};
use cheetah_switch::hash::mix64;
use cheetah_switch::{ResourceLedger, SwitchProfile};
use cheetah_workloads::streams;

const SEED: u64 = 0xAB1A;

fn ledger() -> ResourceLedger {
    let mut p = SwitchProfile::tofino2();
    p.stages = 64;
    p.sram_bits_per_stage = 1 << 31;
    ResourceLedger::new(p)
}

/// Ablation 1: LRU vs FIFO across skew.
pub fn eviction_policy(scale: Scale) -> Report {
    let m = scale.entries(120_000, 5_000_000);
    let mut r = Report::new(
        "abl-eviction",
        "DISTINCT eviction ablation: unpruned fraction, LRU vs FIFO, by skew",
        &["zipf_s", "LRU", "FIFO"],
    );
    for s in [0.0f64, 0.8, 1.1, 1.4] {
        let stream = streams::skewed_duplicates_stream(m, 2_000, s, SEED);
        let mut cells = vec![format!("{s:.1}")];
        for policy in [EvictionPolicy::Lru, EvictionPolicy::Fifo] {
            let mut p = StandalonePruner::new(
                DistinctPruner::build(
                    DistinctConfig { rows: 512, cols: 2, policy, fingerprint: None, seed: SEED },
                    &mut ledger(),
                )
                .expect("build"),
            );
            for &v in &stream {
                p.offer(&[v]).expect("run");
            }
            cells.push(frac(p.stats().unpruned_fraction()));
        }
        r.row(cells);
    }
    r.note("capacity-starved matrix (d=512 « 2000 keys) to expose the policies");
    r
}

/// Ablation 2: SUM vs APH projection under dimension-range skew.
pub fn projection(scale: Scale) -> Report {
    let m = scale.entries(50_000, 2_000_000);
    let mut r = Report::new(
        "abl-projection",
        "SKYLINE projection ablation: unpruned fraction, SUM vs APH, by range skew",
        &["dim2_bits", "Sum", "APH"],
    );
    for bits in [8u32, 12, 16, 20] {
        // dim1 is always 8-bit; dim2 range grows — the §4.4 bias scenario.
        let mut x = SEED ^ u64::from(bits);
        let stream: Vec<Vec<u64>> = (0..m)
            .map(|_| {
                x = mix64(x);
                let d1 = x % 256 + 1;
                x = mix64(x);
                vec![d1, x % (1 << bits) + 1]
            })
            .collect();
        let mut cells = vec![bits.to_string()];
        for policy in [SkylinePolicy::Sum, SkylinePolicy::Aph { beta: 1 << 8 }] {
            let cfg = SkylineConfig { dims: 2, points: 8, policy, packed: true };
            let mut p =
                StandalonePruner::new(SkylinePruner::build(cfg, &mut ledger()).expect("build"));
            for v in &stream {
                p.offer(v).expect("run");
            }
            cells.push(frac(p.stats().unpruned_fraction()));
        }
        r.row(cells);
    }
    r.note("SUM is biased toward the wide dimension; APH orders by (approximate) product");
    r
}

/// Ablation 3: multi-entry packets — modelled wire rate and measured
/// pruning parity.
pub fn batching(scale: Scale) -> Report {
    let m = scale.entries(100_000, 2_000_000);
    let stream = streams::skewed_duplicates_stream(m, 1_000, 1.1, SEED ^ 0xBA);
    let mut r = Report::new(
        "abl-batching",
        "Multi-entry packets (§9): entry rate at 10G and pruning parity",
        &["entries_per_pkt", "Mentries_per_sec", "unpruned", "alus_per_stage"],
    );
    for batch in [1usize, 2, 4, 8] {
        let rate = effective_entry_rate(10e9, 42, 8, batch) / 1e6;
        let cfg = BatchedDistinctConfig { rows: 2048, cols: 2, batch, seed: SEED };
        let usage = BatchedDistinct::table2_row(cfg, SwitchProfile::tofino2()).expect("fits");
        let mut b = BatchedDistinct::build(cfg, &mut ledger()).expect("build");
        let mut seen = 0u64;
        let mut forwarded = 0u64;
        for chunk in stream.chunks(batch) {
            let verdicts = b.process_batch(chunk).expect("run");
            seen += chunk.len() as u64;
            forwarded += verdicts.survivors() as u64;
        }
        r.row(vec![
            batch.to_string(),
            format!("{rate:.1}"),
            frac(forwarded as f64 / seen as f64),
            (usage.alus / 2).to_string(), // per stage (2 stages)
        ]);
    }
    r.note("batching multiplies entry rate at the cost of ALUs; pruning rate barely moves");
    r
}

/// Ablation 4: switch hierarchy (§9) — leaves vs pruning.
pub fn hierarchy(scale: Scale) -> Report {
    let m = scale.entries(120_000, 5_000_000);
    let stream = streams::skewed_duplicates_stream(m, 4_000, 1.0, SEED ^ 0x123);
    let mut r = Report::new(
        "abl-hierarchy",
        "Multi-switch hierarchy (§9): end-to-end unpruned fraction vs leaf count",
        &["leaves", "unpruned", "vs_single"],
    );
    let spec = QuerySpec::Distinct(DistinctConfig {
        rows: 256,
        cols: 2,
        policy: EvictionPolicy::Lru,
        fingerprint: None,
        seed: 0,
    });
    let mut single_frac = None;
    for leaves in [1usize, 2, 4, 8] {
        let mut h =
            MultiSwitch::build(&spec, leaves, &SwitchProfile::tofino1(), SEED).expect("build");
        for &v in &stream {
            h.offer(&[v]).expect("run");
        }
        let f = h.unpruned_fraction();
        let single = *single_frac.get_or_insert(f);
        r.row(vec![leaves.to_string(), frac(f), format!("{:.2}x", single / f.max(1e-12))]);
    }
    r.note("per-device resources fixed (d=256, w=2); leaves add capacity, root mops up");
    r
}

/// All four ablations.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let scale = ctx.scale;
    vec![eviction_policy(scale), projection(scale), batching(scale), hierarchy(scale)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(r: &Report, row: usize, col: usize) -> f64 {
        r.rows[row][col].parse().expect("numeric")
    }

    #[test]
    fn lru_wins_under_skew() {
        let r = eviction_policy(Scale::Quick);
        // At the highest skew, LRU must beat FIFO (hot keys stay cached).
        let last = r.rows.len() - 1;
        assert!(parse(&r, last, 1) <= parse(&r, last, 2), "{:?}", r.rows[last]);
    }

    #[test]
    fn batching_rate_grows_with_batch() {
        let r = batching(Scale::Quick);
        assert!(parse(&r, 3, 1) > parse(&r, 0, 1) * 3.0);
        // Pruning parity: within 3 percentage points of single-entry.
        let single = parse(&r, 0, 2);
        let batched = parse(&r, 3, 2);
        assert!((single - batched).abs() < 0.03, "single {single} vs batched {batched}");
    }

    #[test]
    fn hierarchy_monotone_in_leaves() {
        let r = hierarchy(Scale::Quick);
        let first = parse(&r, 0, 1);
        let last = parse(&r, r.rows.len() - 1, 1);
        assert!(last < first, "more leaves must prune more: {first} -> {last}");
    }

    #[test]
    fn projection_reports_both_policies() {
        let r = projection(Scale::Quick);
        assert_eq!(r.rows.len(), 4);
        for row in &r.rows {
            let sum: f64 = row[1].parse().unwrap();
            let aph: f64 = row[2].parse().unwrap();
            assert!(sum > 0.0 && aph > 0.0);
        }
    }
}

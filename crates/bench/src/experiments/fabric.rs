//! Fabric experiment — goodput and recovery cost vs drop rate.
//!
//! The simulated worker→switch→master fabric of [`cheetah_net::fabric`]
//! carries a fixed survivor workload while the links get progressively
//! worse. Goodput (application bytes per simulated second, delivered
//! exactly once to the merge plane) degrades gracefully because the
//! §7.2 machinery — switch-participating ACKs, go-back-N windows,
//! master dedup — converts every fault into bounded retransmission work
//! instead of a wrong answer.

use crate::{Report, RunCtx};
use bytes::Bytes;
use cheetah_net::{emit_batch, FabricConfig, FabricSim, FaultProfile};

/// Worker flows feeding the switch.
const SHARDS: usize = 4;

/// One shard's survivor flow: `frames` frames of `items` fixed-width
/// payload items each.
fn flow(shard: usize, frames: usize, items: usize) -> Vec<Bytes> {
    (0..frames)
        .map(|seq| {
            let payload: Vec<[u8; 8]> = (0..items)
                .map(|i| ((shard * frames + seq * items + i) as u64).to_be_bytes())
                .collect();
            emit_batch(shard as u32, seq as u64, payload.iter())
        })
        .collect()
}

/// Build the sweep.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let frames = ctx.scale.entries(40, 400);
    let streams: Vec<Vec<Bytes>> = (0..SHARDS).map(|s| flow(s, frames, 32)).collect();
    let mut r = Report::new(
        "fabric",
        "Simulated lossy fabric: goodput vs drop rate",
        &[
            "drop_rate",
            "goodput_mbps",
            "retransmits",
            "dropped_ahead",
            "forwarded_stale",
            "malformed",
            "duplicates",
            "completed",
        ],
    );
    for drop in [0.0f64, 0.05, 0.15, 0.30] {
        // Jitter rides with the loss: the 0.00 row is a truly clean
        // baseline (no reordering, so no DropAhead-driven resends).
        let faults = FaultProfile {
            drop_prob: drop,
            corrupt_prob: drop / 2.0,
            dup_prob: drop / 4.0,
            jitter_ns: if drop == 0.0 { 0 } else { 2_000 },
        };
        let cfg =
            FabricConfig { faults, seed: 0xFAB + (drop * 100.0) as u64, ..Default::default() };
        let mut delivered = 0u64;
        let report = FabricSim::new(cfg, streams.clone()).run(|_| delivered += 1);
        r.row(vec![
            format!("{drop:.2}"),
            format!("{:.1}", report.goodput_bps / 1e6),
            report.retransmissions.to_string(),
            report.dropped_ahead.to_string(),
            report.forwarded_stale.to_string(),
            report.malformed.to_string(),
            report.duplicates.to_string(),
            report.completed.to_string(),
        ]);
        assert_eq!(
            delivered,
            (SHARDS * frames) as u64,
            "every frame must reach the merge plane exactly once"
        );
    }
    r.note(format!(
        "{SHARDS} shards x {frames} frames, 32 items each; corrupt = drop/2, dup = drop/4"
    ));
    r.note("goodput = exactly-once application bytes over simulated completion time");
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn goodput_degrades_but_delivery_stays_exact() {
        let reports = run(&RunCtx::quick());
        assert_eq!(reports.len(), 1);
        let r = &reports[0];
        assert_eq!(r.rows.len(), 4);
        let goodput: Vec<f64> = r.rows.iter().map(|row| row[1].parse::<f64>().unwrap()).collect();
        assert!(goodput[0] > goodput[3], "a 30% drop rate must cost goodput: {goodput:?}");
        // Lossless row does no recovery work; lossy rows do.
        assert_eq!(r.rows[0][2], "0");
        assert!(r.rows[3][2].parse::<u64>().unwrap() > 0);
        for row in &r.rows {
            assert_eq!(row[7], "true", "every sweep point must complete");
        }
    }
}

//! Figure 10 — pruning performance vs. switch resources (six panels).
//!
//! Each panel sweeps one algorithm's resource knob and reports the
//! unpruned fraction (the paper's log-scale y-axis), next to `OPT`: an
//! idealized stream algorithm with no resource constraints, the upper
//! bound on any switch algorithm's pruning.

use crate::report::frac;
use crate::{Report, RunCtx, Scale};
use cheetah_core::pruner::OptPruner;
use cheetah_core::{
    distinct::DistinctOpt, groupby::GroupByOpt, having::HavingOpt, join::JoinOpt,
    skyline::SkylineOpt, topn::TopNOpt, AggKind, BloomKind, DistinctConfig, DistinctPruner,
    EvictionPolicy, GroupByConfig, GroupByPruner, HavingAgg, HavingConfig, HavingPruner,
    JoinConfig, JoinMode, JoinPruner, JoinSide, SkylineConfig, SkylinePolicy, SkylinePruner,
    StandalonePruner, TopNDetConfig, TopNDetPruner, TopNRandConfig, TopNRandPruner,
};
use cheetah_switch::{ControlMsg, ResourceLedger, SwitchProfile, SwitchProgram, Verdict};
use cheetah_workloads::streams;

const SEED: u64 = 0xF1610;

fn ledger() -> ResourceLedger {
    // A generous profile so resource sweeps explore the algorithm, not the
    // chip boundary (the paper's simulations do the same).
    let mut p = SwitchProfile::tofino2();
    p.stages = 64;
    p.sram_bits_per_stage = 1 << 31;
    p.tcam_entries = 1 << 20;
    ResourceLedger::new(p)
}

fn run_single<P: SwitchProgram>(program: P, stream: &[Vec<u64>]) -> f64 {
    let mut p = StandalonePruner::new(program);
    for v in stream {
        p.offer(v).expect("pruner run");
    }
    p.stats().unpruned_fraction()
}

/// Panel (a): DISTINCT, w = 2, LRU vs FIFO over the row count d.
pub fn panel_a(scale: Scale) -> Report {
    let m = scale.entries(150_000, 10_000_000);
    let distinct = 1_000;
    // Zipf-skewed repeats: the paper's DISTINCT workload is the userAgent
    // column, which is heavily skewed — hot keys stay cached, which is why
    // w=2 suffices for near-perfect pruning.
    let stream: Vec<Vec<u64>> = streams::skewed_duplicates_stream(m, distinct, 1.1, SEED)
        .into_iter()
        .map(|v| vec![v])
        .collect();
    let mut r = Report::new(
        "fig10a",
        "DISTINCT (w=2): unpruned fraction vs rows d",
        &["d", "LRU", "FIFO", "OPT"],
    );
    let mut opt = DistinctOpt::default();
    let opt_frac = {
        let mut fwd = 0u64;
        for v in &stream {
            if opt.offer_opt(v) == Verdict::Forward {
                fwd += 1;
            }
        }
        fwd as f64 / m as f64
    };
    for d in [64usize, 256, 1024, 4096, 16384] {
        let lru = run_single(
            DistinctPruner::build(
                DistinctConfig {
                    rows: d,
                    cols: 2,
                    policy: EvictionPolicy::Lru,
                    fingerprint: None,
                    seed: SEED,
                },
                &mut ledger(),
            )
            .expect("build"),
            &stream,
        );
        let fifo = run_single(
            DistinctPruner::build(
                DistinctConfig {
                    rows: d,
                    cols: 2,
                    policy: EvictionPolicy::Fifo,
                    fingerprint: None,
                    seed: SEED,
                },
                &mut ledger(),
            )
            .expect("build"),
            &stream,
        );
        r.row(vec![d.to_string(), frac(lru), frac(fifo), frac(opt_frac)]);
    }
    r.note(format!("stream: {m} entries, {distinct} distinct, random order"));
    r
}

/// Panel (b): SKYLINE, APH vs Sum vs Baseline over stored points w.
pub fn panel_b(scale: Scale) -> Report {
    let m = scale.entries(60_000, 5_000_000);
    let stream = streams::points_stream(m, 2, 1 << 16, SEED ^ 0xB);
    let mut r = Report::new(
        "fig10b",
        "SKYLINE: unpruned fraction vs stored points w",
        &["w", "APH", "Sum", "Baseline", "OPT"],
    );
    let mut opt = SkylineOpt::default();
    let mut fwd = 0u64;
    for v in &stream {
        if opt.offer_opt(v) == Verdict::Forward {
            fwd += 1;
        }
    }
    let opt_frac = fwd as f64 / m as f64;
    for w in [1usize, 2, 4, 7, 10, 15, 20] {
        let mut cells = vec![w.to_string()];
        for policy in
            [SkylinePolicy::Aph { beta: 1 << 8 }, SkylinePolicy::Sum, SkylinePolicy::Baseline]
        {
            let cfg = SkylineConfig { dims: 2, points: w, policy, packed: true };
            let f = run_single(SkylinePruner::build(cfg, &mut ledger()).expect("build"), &stream);
            cells.push(frac(f));
        }
        cells.push(frac(opt_frac));
        r.row(cells);
    }
    r.note(format!("stream: {m} uniform 2-D points in [1, 2^16]"));
    r
}

/// Panel (c): TOP N (N = 250), deterministic vs randomized over w (d=4096).
pub fn panel_c(scale: Scale) -> Report {
    // The randomized matrix needs m ≫ w·d before its pruning wins (Theorem
    // 3's bound is w·d·ln(m·e/(w·d))), so even quick mode uses a larger
    // stream here.
    let m = scale.entries(400_000, 10_000_000);
    let n = 250;
    let stream: Vec<Vec<u64>> =
        streams::random_values(m, 1 << 31, SEED ^ 0xC).into_iter().map(|v| vec![v]).collect();
    let mut r = Report::new(
        "fig10c",
        "TOP N (N=250, d=4096): unpruned fraction vs matrix width w",
        &["w", "Det", "Rand", "OPT"],
    );
    let mut opt = TopNOpt::new(n);
    let mut fwd = 0u64;
    for v in &stream {
        if opt.offer_opt(v) == Verdict::Forward {
            fwd += 1;
        }
    }
    let opt_frac = fwd as f64 / m as f64;
    for w in [2usize, 4, 6, 8, 10, 12] {
        let det = run_single(
            TopNDetPruner::build(TopNDetConfig { n, w }, &mut ledger()).expect("build"),
            &stream,
        );
        let rand = run_single(
            TopNRandPruner::build(
                TopNRandConfig { rows: 4096, cols: w, seed: SEED },
                &mut ledger(),
            )
            .expect("build"),
            &stream,
        );
        r.row(vec![w.to_string(), frac(det), frac(rand), frac(opt_frac)]);
    }
    r.note(format!("stream: {m} uniform values; Rand configured for ≥99.99% success"));
    r
}

/// Panel (d): GROUP BY (MAX) over matrix width w.
pub fn panel_d(scale: Scale) -> Report {
    let m = scale.entries(150_000, 10_000_000);
    let keys = 20_000; // ≫ d, so each extra column visibly reduces conflicts
    let stream: Vec<Vec<u64>> = streams::keyed_values(m, keys, 1 << 20, SEED ^ 0xD)
        .into_iter()
        .map(|kv| kv.to_vec())
        .collect();
    let mut r = Report::new(
        "fig10d",
        "GROUP BY (MAX, d=4096): unpruned fraction vs matrix width w",
        &["w", "GroupBy", "OPT"],
    );
    let mut opt = GroupByOpt::new(AggKind::Max);
    let mut fwd = 0u64;
    for v in &stream {
        if opt.offer_opt(v) == Verdict::Forward {
            fwd += 1;
        }
    }
    let opt_frac = fwd as f64 / m as f64;
    for w in [1usize, 2, 3, 4, 5, 6, 7, 8, 9] {
        let f = run_single(
            GroupByPruner::build(
                GroupByConfig { rows: 4096, cols: w, agg: AggKind::Max, key_bits: 31, seed: SEED },
                &mut ledger(),
            )
            .expect("build"),
            &stream,
        );
        r.row(vec![w.to_string(), frac(f), frac(opt_frac)]);
    }
    r.note(format!("stream: {m} entries over {keys} keys, uniform values"));
    r
}

/// Panel (e): JOIN over Bloom-filter size, classic vs register filter.
pub fn panel_e(scale: Scale) -> Report {
    let n = scale.entries(40_000, 2_000_000);
    let (keys_a, keys_b) = streams::join_streams(n, n, 0.10, SEED ^ 0xE);
    let mut r = Report::new(
        "fig10e",
        "JOIN: unpruned fraction (pass 2) vs Bloom filter size",
        &["size_kb", "BF", "RegBF", "OPT"],
    );
    // OPT: exact sets — unpruned = true matching fraction.
    let opt_frac = {
        let mut opt = JoinOpt::new();
        for &k in &keys_a {
            opt.offer_side(JoinSide::A, k);
        }
        for &k in &keys_b {
            opt.offer_side(JoinSide::B, k);
        }
        opt.set_phase(2);
        let mut fwd = 0u64;
        for &k in &keys_a {
            if opt.offer_side(JoinSide::A, k) == Verdict::Forward {
                fwd += 1;
            }
        }
        for &k in &keys_b {
            if opt.offer_side(JoinSide::B, k) == Verdict::Forward {
                fwd += 1;
            }
        }
        fwd as f64 / (2 * n) as f64
    };
    // Sizes scaled so the smallest filter visibly saturates at this key
    // count (the paper's 0.25–16 MB sweep had ~2M keys per side).
    for size_kb in [8u64, 32, 128, 1024, 8192] {
        let mut cells = vec![size_kb.to_string()];
        for kind in [BloomKind::Classic { h: 3 }, BloomKind::Register { h: 3 }] {
            let cfg = JoinConfig {
                m_bits: size_kb * 1024 * 8,
                kind,
                mode: JoinMode::TwoPass,
                fid_a: 0,
                fid_b: 1,
                seed: SEED,
            };
            let mut p =
                StandalonePruner::new(JoinPruner::build(cfg, &mut ledger()).expect("build"));
            for &k in &keys_a {
                p.offer_for_fid(0, &[k]).expect("run");
            }
            for &k in &keys_b {
                p.offer_for_fid(1, &[k]).expect("run");
            }
            p.program_mut().control(&ControlMsg::SetPhase(2)).expect("phase");
            p.reset_stats();
            for &k in &keys_a {
                p.offer_for_fid(0, &[k]).expect("run");
            }
            for &k in &keys_b {
                p.offer_for_fid(1, &[k]).expect("run");
            }
            cells.push(frac(p.stats().unpruned_fraction()));
        }
        cells.push(frac(opt_frac));
        r.row(cells);
    }
    r.note(format!("{n} keys per side, 10% true match rate; H = 3 hashes"));
    r
}

/// Panel (f): HAVING over counters per row (3 Count-Min rows).
pub fn panel_f(scale: Scale) -> Report {
    let m = scale.entries(150_000, 10_000_000);
    let keys = 2_000;
    let stream = streams::revenue_stream(m, keys, SEED ^ 0xF);
    // Threshold chosen so a small minority of keys qualify.
    let threshold = (m / keys) as u64 * 50 * 3;
    let mut r = Report::new(
        "fig10f",
        "HAVING (3 Count-Min rows): unpruned fraction vs counters per row",
        &["counters", "Having", "OPT"],
    );
    let mut opt = HavingOpt::new(HavingAgg::Sum, threshold);
    let mut fwd = 0u64;
    for kv in &stream {
        if opt.offer_opt(kv) == Verdict::Forward {
            fwd += 1;
        }
    }
    let opt_frac = fwd as f64 / m as f64;
    for counters in [32usize, 64, 128, 256, 512, 1024] {
        let cfg = HavingConfig {
            cm_rows: 3,
            cm_counters: counters,
            threshold,
            agg: HavingAgg::Sum,
            dedup_rows: 2048,
            dedup_cols: 2,
            seed: SEED,
        };
        let f = run_single(
            HavingPruner::build(cfg, &mut ledger()).expect("build"),
            &stream.iter().map(|kv| kv.to_vec()).collect::<Vec<_>>(),
        );
        r.row(vec![counters.to_string(), frac(f), frac(opt_frac)]);
    }
    r.note(format!("{m} entries, {keys} zipfian keys, threshold {threshold}"));
    r
}

/// All six panels.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let scale = ctx.scale;
    vec![
        panel_a(scale),
        panel_b(scale),
        panel_c(scale),
        panel_d(scale),
        panel_e(scale),
        panel_f(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(r: &Report, name: &str) -> usize {
        r.headers.iter().position(|h| h == name).expect("column")
    }

    fn parse(r: &Report, row: usize, c: usize) -> f64 {
        r.rows[row][c].parse().expect("numeric cell")
    }

    #[test]
    fn panel_a_shape() {
        let r = panel_a(Scale::Quick);
        let lru = col(&r, "LRU");
        let optc = col(&r, "OPT");
        // More rows prune more.
        let first = parse(&r, 0, lru);
        let last = parse(&r, r.rows.len() - 1, lru);
        assert!(last < first, "more rows must prune more: {first} -> {last}");
        // OPT lower-bounds every configuration.
        for i in 0..r.rows.len() {
            assert!(parse(&r, i, lru) >= parse(&r, i, optc) * 0.99, "OPT must lower-bound");
        }
        // The paper's point: w=2, d=4096 is close to OPT on the skewed
        // workload (prunes "all non-distinct entries" up to stragglers).
        let i = r.rows.iter().position(|row| row[0] == "4096").expect("d=4096 row");
        assert!(
            parse(&r, i, lru) <= parse(&r, i, optc) * 3.0 + 5e-3,
            "d=4096 should approach OPT: {} vs {}",
            parse(&r, i, lru),
            parse(&r, i, optc)
        );
    }

    #[test]
    fn panel_c_rand_beats_det_at_small_width() {
        // Figure 10c's headline: allowing a 0.01% failure probability buys
        // a much higher pruning rate. The gap is largest at small w (at
        // quick scale the w·d product approaches the stream length, where
        // Theorem 3 predicts the randomized matrix loses steam; at paper
        // scale Rand wins everywhere).
        let r = panel_c(Scale::Quick);
        let det = col(&r, "Det");
        let rand = col(&r, "Rand");
        for i in 0..3 {
            assert!(
                parse(&r, i, rand) < parse(&r, i, det),
                "row {i}: rand {} vs det {}",
                parse(&r, i, rand),
                parse(&r, i, det)
            );
        }
        // Det plateaus once the threshold ladder saturates the value range.
        let last = r.rows.len() - 1;
        assert!(parse(&r, last, det) <= parse(&r, 0, det));
    }

    #[test]
    fn panel_e_bigger_filters_fewer_survivors() {
        let r = panel_e(Scale::Quick);
        let bf = col(&r, "BF");
        let optc = col(&r, "OPT");
        let first = parse(&r, 0, bf);
        let last = parse(&r, r.rows.len() - 1, bf);
        assert!(last <= first);
        // Largest filter approaches OPT (≈ true match rate).
        assert!(last <= parse(&r, r.rows.len() - 1, optc) * 1.3 + 0.01);
    }

    #[test]
    fn panel_f_more_counters_prune_more() {
        let r = panel_f(Scale::Quick);
        let h = col(&r, "Having");
        let first = parse(&r, 0, h);
        let last = parse(&r, r.rows.len() - 1, h);
        assert!(last <= first);
    }
}

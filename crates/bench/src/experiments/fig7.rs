//! Figure 7 — the NetAccel result-drain overhead.
//!
//! NetAccel-style systems complete queries *on* the switch, so the result
//! lives in switch registers and must be drained through the control plane
//! before the query can answer (and before any downstream operator can
//! start). Cheetah streams survivors to the master during execution and
//! pays nothing extra. The paper measured a *lower bound* for NetAccel —
//! the time to read the output back — which is exactly what
//! [`DrainModel`] charges.
//!
//! Workload: TPC-H Q3's order-key join; the result size is varied by
//! changing the filter ranges (x-axis: result size as % of the input).

use crate::report::secs;
use crate::{Report, RunCtx};
use cheetah_net::ENTRY_WIRE_BYTES;
use cheetah_switch::DrainModel;

const LINK_GBPS: f64 = 10.0;
/// Per-entry master-side merge cost (measured order of magnitude for the
/// hash-join build side).
const MASTER_NS_PER_ENTRY: f64 = 60.0;

/// Build the figure.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let scale = ctx.scale;
    let input_entries = scale.entries(2_000_000, 50_000_000) as f64;
    let drain = DrainModel::default_model();
    let mut r = Report::new(
        "fig7",
        "Result-move overhead vs result size (Cheetah streaming vs NetAccel drain)",
        &["result_%", "cheetah", "netaccel_lower_bound", "ratio"],
    );
    for pct in [0.5f64, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 40.0] {
        let result_entries = input_entries * pct / 100.0;
        // Cheetah: survivors stream to the master at line rate, overlapped
        // with execution; the visible cost is the tail transfer + merge.
        let cheetah = result_entries * ENTRY_WIRE_BYTES as f64 * 8.0 / (LINK_GBPS * 1e9)
            + result_entries * MASTER_NS_PER_ENTRY * 1e-9;
        // NetAccel: the same result must additionally be drained from the
        // dataplane before it is usable, and cannot be pipelined.
        let netaccel =
            cheetah + drain.drain_seconds((result_entries * ENTRY_WIRE_BYTES as f64) as u64);
        r.row(vec![
            format!("{pct}"),
            secs(cheetah),
            secs(netaccel),
            format!("{:.2}x", netaccel / cheetah.max(1e-12)),
        ]);
    }
    r.note(format!(
        "input = {} entries; drain channel = {} Gbps + {} ms setup (DrainModel)",
        input_entries as u64,
        drain.channel_gbps,
        drain.setup_seconds * 1e3
    ));
    r.note("NetAccel bound mirrors the paper's: ideal dataplane execution, drain cost only");
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn netaccel_is_always_slower_and_gap_grows_absolutely() {
        let r = &run(&RunCtx::quick())[0];
        let parse = |s: &str| -> f64 {
            // secs() renders "1.23s" / "4.56ms" / "7.8µs".
            if let Some(x) = s.strip_suffix("ms") {
                x.parse::<f64>().unwrap() * 1e-3
            } else if let Some(x) = s.strip_suffix("µs") {
                x.parse::<f64>().unwrap() * 1e-6
            } else {
                s.strip_suffix('s').unwrap().parse::<f64>().unwrap()
            }
        };
        let mut last_gap = 0.0;
        for row in &r.rows {
            let cheetah = parse(&row[1]);
            let net = parse(&row[2]);
            assert!(net > cheetah, "NetAccel must pay the drain: {row:?}");
            let gap = net - cheetah;
            assert!(gap >= last_gap * 0.99, "absolute gap should grow with result size");
            last_gap = gap;
        }
    }
}

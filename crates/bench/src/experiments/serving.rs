//! The serving plane under multi-tenant load: deterministic open- and
//! closed-loop workloads replayed through the [`Session`] front door,
//! per-tenant latency percentiles out.
//!
//! Three phases, each a row family in the report:
//!
//! * **closed** — four tenants, each keeping one request in flight over a
//!   shared mixed query bag (all seven shapes). Every response is checked
//!   bit-for-bit against a sequential no-serving-plane baseline, and the
//!   session's plan-cache hit rate is reported (the mix has seven shapes,
//!   so almost every request after warm-up should hit).
//! * **flood** — a flooding co-tenant keeps a deep backlog queued while a
//!   light tenant runs closed-loop. The light tenant's p99 is compared
//!   against its *fair-share expectation* (two active tenants ⇒ twice its
//!   measured solo mean); the deficit-round-robin scheduler must keep the
//!   ratio bounded.
//! * **open** — arrivals on a fixed jittered schedule regardless of
//!   completions, offered at roughly half the closed-loop capacity;
//!   sojourn time (completion minus *scheduled* arrival) absorbs any
//!   schedule slip, so falling behind is visible in the percentiles.
//!
//! Everything is derived from one seed: the query mix, the tables, and
//! the arrival jitter — see [`crate::workload::ServingWorkload`].

use crate::report::{frac, secs};
use crate::workload::ServingWorkload;
use crate::{Report, RunCtx, Scale};
use cheetah_db::{Cluster, DbPredicate, DbQuery, IntCmp, QueryOutput, Table};
use cheetah_serve::{QueryRequest, Session, SessionConfig, SessionStats};
use cheetah_telemetry::Histogram;
use cheetah_workloads::SkewedTableConfig;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// The four tenants every phase schedules.
pub const TENANTS: [&str; 4] = ["alpha", "beta", "gamma", "delta"];

/// Workload seed (query mix, tables, arrival jitter).
const SERVING_SEED: u64 = 0x5E21;

/// Outstanding requests the flooding tenant keeps queued.
const FLOOD_DEPTH: usize = 8;

/// The mixed query bag: all seven shapes, constants sized for the
/// skewed smoke-style tables below.
fn serving_queries() -> Vec<DbQuery> {
    vec![
        DbQuery::FilterCount { pred: DbPredicate::CmpInt { col: 1, op: IntCmp::Gt, lit: 90_000 } },
        DbQuery::Distinct { col: 0 },
        DbQuery::TopN { order_col: 1, n: 64 },
        DbQuery::GroupByMax { key_col: 0, val_col: 1 },
        DbQuery::HavingSum { key_col: 0, val_col: 2, threshold: 40_000 },
        DbQuery::Skyline { cols: vec![1, 2] },
        DbQuery::Join { left_key: 0, right_key: 0 },
    ]
}

fn serving_tables(rows: usize, seed: u64) -> (Arc<Table>, Arc<Table>) {
    let left = SkewedTableConfig {
        rows,
        partitions: 4,
        partition_skew: 0.6,
        keys: 200,
        key_skew: 1.0,
        seed,
    }
    .build();
    let right = SkewedTableConfig {
        rows: rows / 2,
        partitions: 2,
        partition_skew: 0.4,
        keys: 200,
        key_skew: 0.8,
        seed: seed ^ 0xFACE,
    }
    .build();
    (Arc::new(left), Arc::new(right))
}

fn request(q: &DbQuery, left: &Arc<Table>, right: &Arc<Table>, tenant: &str) -> QueryRequest {
    let req = QueryRequest::new(q.clone(), Arc::clone(left)).tenant(tenant);
    if q.is_binary() {
        req.with_right(Arc::clone(right))
    } else {
        req
    }
}

/// Sequential no-serving-plane ground truth, one output per mix query.
fn baselines(
    cluster: &Cluster,
    queries: &[DbQuery],
    left: &Arc<Table>,
    right: &Arc<Table>,
) -> Vec<QueryOutput> {
    queries
        .iter()
        .map(|q| {
            let r = q.is_binary().then_some(&**right);
            cluster.run_baseline(q, left, r).output
        })
        .collect()
}

/// One tenant's measurements from one phase. Latency and queue-time
/// samples go straight into telemetry histograms — the report's p50/p99
/// are histogram-snapshot quantiles, the same summaries the session
/// registry exports (the `percentiles_agree_*` test below pins the two
/// paths to within one sub-bucket of each other).
struct TenantOutcome {
    tenant: String,
    latency: Histogram,
    queue: Histogram,
    mismatches: usize,
    shed: usize,
}

impl TenantOutcome {
    fn new(tenant: impl Into<String>) -> Self {
        TenantOutcome {
            tenant: tenant.into(),
            latency: Histogram::default(),
            queue: Histogram::default(),
            mismatches: 0,
            shed: 0,
        }
    }

    fn requests(&self) -> u64 {
        self.latency.count()
    }

    fn row(&self, phase: &str) -> Vec<String> {
        let lat = self.latency.snapshot();
        vec![
            phase.to_string(),
            self.tenant.clone(),
            lat.count.to_string(),
            secs(lat.p50),
            secs(lat.p99),
            secs(self.queue.mean().unwrap_or(0.0)),
            if self.mismatches == 0 {
                "identical".into()
            } else {
                format!("{} DIVERGED", self.mismatches)
            },
        ]
    }
}

/// Closed loop: one thread per tenant, each submitting its next request
/// the moment the previous completes. Returns per-tenant outcomes and
/// the phase makespan in seconds.
fn run_closed(
    session: &Session,
    w: &ServingWorkload,
    left: &Arc<Table>,
    right: &Arc<Table>,
    truth: &[QueryOutput],
) -> (Vec<TenantOutcome>, f64) {
    let t0 = Instant::now();
    let outcomes = std::thread::scope(|s| {
        let handles: Vec<_> = w
            .tenants
            .iter()
            .enumerate()
            .map(|(t_idx, spec)| {
                s.spawn(move || {
                    let mut out = TenantOutcome::new(spec.name.clone());
                    for r in 0..spec.requests {
                        let q_idx = w.query_index(t_idx, r);
                        let req = request(&w.queries[q_idx], left, right, &spec.name);
                        let start = Instant::now();
                        let resp = session
                            .submit(req)
                            .expect("closed loop stays under capacity")
                            .wait()
                            .expect("admitted requests complete");
                        out.latency.observe(start.elapsed().as_secs_f64());
                        out.queue.observe(resp.breakdown.queue_seconds);
                        if resp.output != truth[q_idx] {
                            out.mismatches += 1;
                        }
                    }
                    out
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("tenant thread")).collect()
    });
    (outcomes, t0.elapsed().as_secs_f64())
}

/// Open loop: each tenant submits on its jittered schedule without
/// waiting; a per-tenant redeemer thread measures sojourn (completion
/// minus *scheduled* arrival, so schedule slip counts against us).
fn run_open(
    session: &Session,
    w: &ServingWorkload,
    left: &Arc<Table>,
    right: &Arc<Table>,
    truth: &[QueryOutput],
) -> Vec<TenantOutcome> {
    let t0 = Instant::now();
    std::thread::scope(|s| {
        let handles: Vec<_> = w
            .tenants
            .iter()
            .enumerate()
            .map(|(t_idx, spec)| {
                let (tx, rx) = mpsc::channel();
                let submitter = s.spawn(move || {
                    let mut shed = 0usize;
                    for r in 0..spec.requests {
                        let due = w.arrival_seconds(t_idx, r).expect("open mode schedules");
                        let elapsed = t0.elapsed().as_secs_f64();
                        if due > elapsed {
                            std::thread::sleep(Duration::from_secs_f64(due - elapsed));
                        }
                        let q_idx = w.query_index(t_idx, r);
                        match session.submit(request(&w.queries[q_idx], left, right, &spec.name)) {
                            Ok(ticket) => tx.send((q_idx, due, ticket)).expect("redeemer alive"),
                            Err(_) => shed += 1,
                        }
                    }
                    shed
                });
                let redeemer = s.spawn(move || {
                    let mut out = TenantOutcome::new(spec.name.clone());
                    for (q_idx, due, ticket) in rx {
                        let resp = ticket.wait().expect("admitted requests complete");
                        out.latency.observe((t0.elapsed().as_secs_f64() - due).max(0.0));
                        out.queue.observe(resp.breakdown.queue_seconds);
                        if resp.output != truth[q_idx] {
                            out.mismatches += 1;
                        }
                    }
                    out
                });
                (submitter, redeemer)
            })
            .collect();
        handles
            .into_iter()
            .map(|(submitter, redeemer)| {
                let shed = submitter.join().expect("submitter thread");
                let mut out = redeemer.join().expect("redeemer thread");
                out.shed = shed;
                out
            })
            .collect()
    })
}

/// The flood phase's verdict: the light tenant's percentiles, its solo
/// mean, and the fairness ratio the gate reads.
struct FloodOutcome {
    solo_mean: f64,
    light: TenantOutcome,
    flood_served: usize,
}

impl FloodOutcome {
    /// Fair-share expectation: two active tenants share the plane, so
    /// the light tenant should see about twice its solo-mean latency.
    fn fair_share(&self) -> f64 {
        2.0 * self.solo_mean
    }

    /// p99 over fair share — the acceptance criterion bounds this at 5.
    fn fairness_ratio(&self) -> f64 {
        self.light.latency.snapshot().p99 / self.fair_share().max(1e-12)
    }
}

/// Measure the light tenant solo, then again with a flooding co-tenant
/// keeping [`FLOOD_DEPTH`] requests queued the whole time.
fn run_flood(
    cluster: &Cluster,
    left: &Arc<Table>,
    right: &Arc<Table>,
    solo_reqs: usize,
    light_reqs: usize,
) -> FloodOutcome {
    let light_q = DbQuery::GroupByMax { key_col: 0, val_col: 1 };
    let flood_q = DbQuery::Distinct { col: 0 };
    let session = Session::new(cluster.clone(), SessionConfig::default());

    // Solo reference: the light tenant with the plane to itself.
    let mut solo = 0.0;
    for _ in 0..solo_reqs.max(1) {
        let start = Instant::now();
        session.run_blocking(request(&light_q, left, right, "light")).expect("solo run");
        solo += start.elapsed().as_secs_f64();
    }
    let solo_mean = solo / solo_reqs.max(1) as f64;

    let stop = AtomicBool::new(false);
    let (light, flood_served) = std::thread::scope(|s| {
        let flood = s.spawn(|| {
            let mut served = 0usize;
            let mut backlog = std::collections::VecDeque::new();
            while !stop.load(Ordering::Relaxed) {
                while backlog.len() < FLOOD_DEPTH {
                    backlog.push_back(
                        session
                            .submit(request(&flood_q, left, right, "flood"))
                            .expect("flood stays under capacity"),
                    );
                }
                let ticket = backlog.pop_front().expect("depth > 0");
                ticket.wait().expect("flood requests complete");
                served += 1;
            }
            for ticket in backlog {
                ticket.wait().expect("drained flood requests complete");
                served += 1;
            }
            served
        });
        let light = s.spawn(|| {
            let out = TenantOutcome::new("light (flooded)");
            for _ in 0..light_reqs {
                let start = Instant::now();
                let resp = session
                    .submit(request(&light_q, left, right, "light"))
                    .expect("light stays under capacity")
                    .wait()
                    .expect("light requests complete");
                out.latency.observe(start.elapsed().as_secs_f64());
                out.queue.observe(resp.breakdown.queue_seconds);
            }
            stop.store(true, Ordering::Relaxed);
            out
        });
        (light.join().expect("light thread"), flood.join().expect("flood thread"))
    });
    FloodOutcome { solo_mean, light, flood_served }
}

/// Everything one serving run produced — the report rows plus the
/// numbers the tests gate on.
struct ServingRun {
    closed: Vec<TenantOutcome>,
    closed_makespan: f64,
    closed_stats: SessionStats,
    flood: FloodOutcome,
    open: Vec<TenantOutcome>,
    open_rate: f64,
}

fn run_at(
    rows: usize,
    per_tenant: usize,
    open_per_tenant: usize,
    solo_reqs: usize,
    light_reqs: usize,
) -> ServingRun {
    let cluster = Cluster::default();
    let queries = serving_queries();
    let (left, right) = serving_tables(rows, SERVING_SEED);
    let truth = baselines(&cluster, &queries, &left, &right);

    let closed_w = ServingWorkload::closed(&TENANTS, per_tenant, queries.clone(), SERVING_SEED);
    let session = Session::new(cluster.clone(), SessionConfig::default());
    let (closed, closed_makespan) = run_closed(&session, &closed_w, &left, &right, &truth);
    let closed_stats = session.stats();
    drop(session);

    let flood = run_flood(&cluster, &left, &right, solo_reqs, light_reqs);

    // Offer roughly half the measured closed-loop capacity, split across
    // tenants; clamped so a noisy runner can't stretch the phase.
    let throughput = closed_w.total_requests() as f64 / closed_makespan.max(1e-9);
    let open_rate = (0.5 * throughput / TENANTS.len() as f64).clamp(50.0, 20_000.0);
    let open_w =
        ServingWorkload::open(&TENANTS, open_per_tenant, queries, open_rate, SERVING_SEED ^ 1);
    let session = Session::new(cluster, SessionConfig::default());
    let open = run_open(&session, &open_w, &left, &right, &truth);

    ServingRun { closed, closed_makespan, closed_stats, flood, open, open_rate }
}

/// Run the serving-plane experiment: closed-loop, flood, and open-loop
/// phases over the four-tenant mixed workload.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let (rows, per_tenant, open_per_tenant, solo_reqs, light_reqs) = match ctx.scale {
        Scale::Quick => (3_000, 250, 24, 16, 32),
        Scale::Full => (6_000, 1_000, 96, 32, 64),
    };
    let r = run_at(rows, per_tenant, open_per_tenant, solo_reqs, light_reqs);
    let mut report = Report::new(
        "serving",
        format!(
            "Serving plane: {} tenants x {per_tenant} closed-loop mixed queries ({rows} rows)",
            TENANTS.len()
        ),
        &["phase", "tenant", "requests", "p50", "p99", "mean queue", "vs baseline"],
    );
    for t in &r.closed {
        report.row(t.row("closed"));
    }
    report.row(r.flood.light.row("flood"));
    for t in &r.open {
        report.row(t.row("open"));
    }

    let total: u64 = r.closed.iter().map(|t| t.requests()).sum();
    report.note(format!(
        "closed: {total} requests in {} ({:.0} req/s); plan-cache hit rate {} \
         ({} hits / {} misses; criterion > 90%)",
        secs(r.closed_makespan),
        total as f64 / r.closed_makespan.max(1e-9),
        frac(r.closed_stats.plan_hit_rate()),
        r.closed_stats.plan_hits,
        r.closed_stats.plan_misses,
    ));
    report.note(format!(
        "flood: light p99 {} vs fair-share expectation {} (2x solo mean {}) — \
         ratio {:.2}, criterion <= 5; flooding co-tenant served {} meanwhile",
        secs(r.flood.light.latency.snapshot().p99),
        secs(r.flood.fair_share()),
        secs(r.flood.solo_mean),
        r.flood.fairness_ratio(),
        r.flood.flood_served,
    ));
    let shed: usize = r.open.iter().map(|t| t.shed).sum();
    report.note(format!(
        "open: {:.0} req/s offered per tenant (half of measured closed capacity), \
         {shed} shed by admission control; sojourn measured from scheduled arrival",
        r.open_rate,
    ));
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The tentpole's acceptance shape in miniature: every concurrent
    /// response bit-identical to the sequential baseline, and repeat
    /// shapes served out of the plan cache.
    #[test]
    fn closed_loop_is_bit_identical_and_caches() {
        let cluster = Cluster::default();
        let queries = serving_queries();
        let (left, right) = serving_tables(1_500, SERVING_SEED);
        let truth = baselines(&cluster, &queries, &left, &right);
        let w = ServingWorkload::closed(&TENANTS, 30, queries, SERVING_SEED);
        let session = Session::new(cluster, SessionConfig::default());
        let (outcomes, _) = run_closed(&session, &w, &left, &right, &truth);
        for t in &outcomes {
            assert_eq!(t.mismatches, 0, "tenant {} diverged from the baseline", t.tenant);
            assert_eq!(t.requests(), 30);
        }
        let stats = session.stats();
        assert_eq!(stats.completed, 120);
        assert_eq!(stats.rejected, 0);
        assert!(
            stats.plan_hit_rate() > 0.9,
            "7-shape mix over 120 requests must mostly hit the plan cache, got {}",
            stats.plan_hit_rate()
        );
    }

    /// The fairness criterion, retry-damped like the chooser tests: a
    /// single attempt under a fully parallel `cargo test` can land the
    /// solo reference and the flooded phase on very different machine
    /// load, so pass if any of three attempts is within bound.
    #[test]
    fn light_tenant_p99_stays_within_the_fairness_bound() {
        let cluster = Cluster::default();
        let (left, right) = serving_tables(2_000, SERVING_SEED);
        let mut failures = Vec::new();
        for _ in 0..3 {
            let f = run_flood(&cluster, &left, &right, 12, 24);
            if f.fairness_ratio() <= 5.0 {
                return;
            }
            failures.push(format!(
                "light p99 {} vs fair share {} (ratio {:.2})",
                secs(f.light.latency.snapshot().p99),
                secs(f.fair_share()),
                f.fairness_ratio(),
            ));
        }
        panic!("no attempt met the 5x fair-share bound:\n{}", failures.join("\n"));
    }

    /// Open-loop arrivals flow through the same identity check and the
    /// report carries one row per tenant per phase.
    #[test]
    fn report_emits_per_tenant_percentile_rows_for_every_phase() {
        let r = run_at(1_200, 12, 8, 4, 8);
        for t in r.closed.iter().chain(r.open.iter()) {
            assert_eq!(t.mismatches, 0, "tenant {} diverged", t.tenant);
        }
        assert_eq!(r.closed.len(), TENANTS.len());
        assert_eq!(r.open.len(), TENANTS.len());
        let open_served: usize = r.open.iter().map(|t| t.requests() as usize + t.shed).sum();
        assert_eq!(open_served, TENANTS.len() * 8, "every scheduled arrival accounted for");
        assert!(r.flood.solo_mean > 0.0);
    }

    /// `q`-th percentile of an unsorted sample — the hand-rolled
    /// rank-order path the report used before the switch to histogram
    /// quantiles, kept only to pin its replacement. Nearest rank
    /// `ceil(q*n)`, the same rule the histogram's bucket walk applies,
    /// so the agreement bound below is exact rather than off-by-one.
    fn percentile(samples: &[f64], q: f64) -> f64 {
        if samples.is_empty() {
            return 0.0;
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("finite latencies"));
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        sorted[rank - 1]
    }

    /// The agreement contract that let the report switch from exact
    /// rank-order percentiles to histogram quantiles: on a deterministic
    /// latency-shaped sample (three decades, heavy tail), the snapshot's
    /// p50/p99 must sit within one log-bucket of the exact ranks — an
    /// upper bound no more than `2^(1/8)` (~9%) above them.
    #[test]
    fn percentiles_agree_with_the_exact_ranks_they_replaced() {
        let mut samples = Vec::new();
        let mut x = 0x5E21u64;
        for _ in 0..4_000 {
            x = cheetah_switch::hash::mix64(x);
            // 100us..1s, log-uniform-ish with a deterministic heavy tail.
            let u = (x % 10_000) as f64 / 10_000.0;
            samples.push(1e-4 * 10f64.powf(4.0 * u.powi(2)));
        }
        let hist = Histogram::new();
        for &s in &samples {
            hist.observe(s);
        }
        let snap = hist.snapshot();
        let one_bucket = 2f64.powf(1.0 / cheetah_telemetry::HIST_SUB_BUCKETS as f64);
        for (q, got) in [(0.50, snap.p50), (0.99, snap.p99)] {
            let exact = percentile(&samples, q);
            assert!(
                got >= exact * (1.0 - 1e-9) && got <= exact * one_bucket * (1.0 + 1e-9),
                "p{:.0}: histogram {got} vs exact {exact} — outside one sub-bucket",
                q * 100.0
            );
        }
        assert_eq!(snap.count, samples.len() as u64);
        let exact_mean = samples.iter().sum::<f64>() / samples.len() as f64;
        assert!((snap.mean() - exact_mean).abs() < 1e-12, "mean is exact, not bucketed");
    }
}

//! Figure 9 — blocking master latency vs unpruned fraction.
//!
//! §8.3: the master's completion time grows **super-linearly** in the
//! unpruned fraction, because entries buffer up when the arrival rate
//! exceeds the (query-specific) software service rate. TOP N's heap
//! digests millions of entries per second; SKYLINE-class operators are far
//! slower, so they need more pruning for the same latency.

use crate::report::secs;
use crate::{Report, RunCtx};
use cheetah_db::MasterIngestModel;

/// Per-query master service rates (entries/second), in the measured order
/// of magnitude for the software operators of `cheetah-db`.
pub const SERVICE_RATES: [(&str, f64); 3] =
    [("Top N", 5.0e6), ("Distinct", 2.5e6), ("Max Group-By", 1.2e6)];

/// Build the figure.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let scale = ctx.scale;
    let total_entries = scale.entries(30_000_000, 100_000_000) as f64;
    let mut r = Report::new(
        "fig9",
        "Blocking master latency vs unpruned fraction",
        &["unpruned_frac", "Top N", "Distinct", "Max Group-By"],
    );
    for frac in [0.05f64, 0.1, 0.15, 0.2, 0.25, 0.3, 0.35, 0.4, 0.45, 0.5] {
        let entries = (total_entries * frac) as u64;
        let mut cells = vec![format!("{frac:.2}")];
        for (_, rate) in SERVICE_RATES {
            let m = MasterIngestModel {
                arrival_rate: 10.0e6, // the CWorkers' ~10 Mpps at 10G
                base_service_rate: rate,
                backlog_halving: 4.0e6,
                nic_cap_rate: 40.0e6,
            };
            cells.push(secs(m.blocking_latency(entries)));
        }
        r.row(cells);
    }
    r.note(format!("stream of {} entries; arrival 10 Mpps", total_entries as u64));
    r.note("superlinear growth = buffering once arrivals outpace the operator");
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_secs(s: &str) -> f64 {
        if let Some(x) = s.strip_suffix("ms") {
            x.parse::<f64>().unwrap() * 1e-3
        } else if let Some(x) = s.strip_suffix("µs") {
            x.parse::<f64>().unwrap() * 1e-6
        } else {
            s.strip_suffix('s').unwrap().parse::<f64>().unwrap()
        }
    }

    #[test]
    fn growth_is_superlinear_for_slow_operators() {
        let r = &run(&RunCtx::quick())[0];
        // Max Group-By column: latency at 0.5 must exceed 5× latency at 0.1
        // (superlinear), while fractions only grew 5×.
        let at = |f: &str| {
            let row = r.rows.iter().find(|row| row[0] == f).expect("row");
            parse_secs(&row[3])
        };
        assert!(at("0.50") > at("0.10") * 5.0 * 1.2);
    }

    #[test]
    fn faster_operators_tolerate_more_unpruned_data() {
        let r = &run(&RunCtx::quick())[0];
        for row in &r.rows {
            let topn = parse_secs(&row[1]);
            let groupby = parse_secs(&row[3]);
            assert!(topn <= groupby, "Top N must be the cheapest operator: {row:?}");
        }
    }
}

//! Table 3 — performance comparison of hardware choices.
//!
//! This is a literature table in the paper (server / GPU / FPGA / SmartNIC
//! / Tofino 2 throughput and latency); there is nothing to measure here,
//! so we reproduce the constants with their provenance and sanity-check
//! the Tofino column against the [`SwitchProfile`] the simulator uses.

use crate::{Report, RunCtx};
use cheetah_switch::SwitchProfile;

/// The rows of Table 3: (system, throughput, latency, paper citation).
pub const TABLE3: [(&str, &str, &str, &str); 5] = [
    ("Server", "10-100 Gbps", "10-100 µs", "[5]"),
    ("GPU", "40-120 Gbps", "8-25 µs", "[5]"),
    ("FPGA", "10-100 Gbps", "10 µs", "[38]"),
    ("SmartNIC", "10-100 Gbps", "5-10 µs", "[33]"),
    ("Tofino V2", "12.8 Tbps", "<1 µs", "[40]"),
];

/// Build the table.
pub fn run(_ctx: &RunCtx) -> Vec<Report> {
    let mut r = Report::new(
        "table3",
        "Performance comparison of hardware choices (literature constants)",
        &["system", "throughput", "latency", "source"],
    );
    for (sys, tput, lat, src) in TABLE3 {
        r.row(vec![sys.into(), tput.into(), lat.into(), src.into()]);
    }
    let t2 = SwitchProfile::tofino2();
    r.note(format!(
        "simulator's Tofino 2 profile: {} Tbps, {} ns — consistent with the table",
        t2.throughput_tbps, t2.latency_ns
    ));
    r.note("reproduced as documented constants; no measurement is possible or intended");
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tofino_row_is_consistent_with_profile() {
        let t2 = SwitchProfile::tofino2();
        assert_eq!(t2.throughput_tbps, 12.8);
        assert!(t2.latency_ns < 1000);
        let r = &run(&RunCtx::quick())[0];
        let tofino = r.rows.iter().find(|row| row[0].contains("Tofino")).expect("row");
        assert!(tofino[1].contains("12.8 Tbps"));
    }

    #[test]
    fn switch_beats_alternatives_by_orders_of_magnitude() {
        // The qualitative claim of §2.1 / Table 3.
        let switch_gbps = 12_800.0;
        let best_alternative_gbps = 120.0;
        assert!(switch_gbps / best_alternative_gbps > 100.0);
    }
}

//! Figure 11 — pruning performance vs. data scale (six panels).
//!
//! Fixed resources, growing stream prefixes. DISTINCT / GROUP BY / TOP N /
//! SKYLINE improve with scale (the structures "learn" the data); JOIN and
//! HAVING degrade (filters fill up, more keys cross the threshold).

use crate::report::frac;
use crate::{Report, RunCtx, Scale};
use cheetah_core::{
    AggKind, BloomKind, DistinctConfig, DistinctPruner, EvictionPolicy, GroupByConfig,
    GroupByPruner, HavingAgg, HavingConfig, HavingPruner, JoinConfig, JoinMode, JoinPruner,
    SkylineConfig, SkylinePolicy, SkylinePruner, StandalonePruner, TopNRandConfig, TopNRandPruner,
};
use cheetah_switch::{ControlMsg, ResourceLedger, SwitchProfile, SwitchProgram};
use cheetah_workloads::streams;

const SEED: u64 = 0xF1611;
const CHECKPOINTS: usize = 8;

fn ledger() -> ResourceLedger {
    let mut p = SwitchProfile::tofino2();
    p.stages = 64;
    p.sram_bits_per_stage = 1 << 31;
    p.tcam_entries = 1 << 20;
    ResourceLedger::new(p)
}

/// Run one program over the stream, reporting the cumulative unpruned
/// fraction at evenly spaced checkpoints.
fn scaled_run<P: SwitchProgram>(program: P, stream: &[Vec<u64>]) -> Vec<(usize, f64)> {
    let mut p = StandalonePruner::new(program);
    let step = (stream.len() / CHECKPOINTS).max(1);
    let mut out = Vec::new();
    for (i, v) in stream.iter().enumerate() {
        p.offer(v).expect("run");
        if (i + 1) % step == 0 || i + 1 == stream.len() {
            out.push((i + 1, p.stats().unpruned_fraction()));
        }
    }
    out.dedup_by_key(|(n, _)| *n);
    out
}

/// Panel (a): DISTINCT (w=2) across d, vs scale.
pub fn panel_a(scale: Scale) -> Report {
    let m = scale.entries(160_000, 20_000_000);
    let stream: Vec<Vec<u64>> =
        streams::duplicates_stream(m, 2_000, SEED).into_iter().map(|v| vec![v]).collect();
    let ds = [64usize, 256, 1024, 4096, 16384];
    let mut r = Report::new(
        "fig11a",
        "DISTINCT (w=2) unpruned fraction vs entries, per d",
        &["entries", "d=64", "d=256", "d=1024", "d=4096", "d=16384"],
    );
    let mut curves = Vec::new();
    for d in ds {
        let cfg = DistinctConfig {
            rows: d,
            cols: 2,
            policy: EvictionPolicy::Lru,
            fingerprint: None,
            seed: SEED,
        };
        curves.push(scaled_run(DistinctPruner::build(cfg, &mut ledger()).expect("build"), &stream));
    }
    for i in 0..curves[0].len() {
        let mut cells = vec![curves[0][i].0.to_string()];
        for c in &curves {
            cells.push(frac(c[i].1));
        }
        r.row(cells);
    }
    r.note("larger data → better pruning: first occurrences amortize away");
    r
}

/// Panel (b): SKYLINE (APH) across w, vs scale.
pub fn panel_b(scale: Scale) -> Report {
    let m = scale.entries(60_000, 5_000_000);
    let stream = streams::points_stream(m, 2, 1 << 16, SEED ^ 0xB);
    let ws = [2usize, 4, 8, 16];
    let mut r = Report::new(
        "fig11b",
        "SKYLINE (APH) unpruned fraction vs entries, per w",
        &["entries", "w=2", "w=4", "w=8", "w=16"],
    );
    let mut curves = Vec::new();
    for w in ws {
        let cfg = SkylineConfig {
            dims: 2,
            points: w,
            policy: SkylinePolicy::Aph { beta: 1 << 8 },
            packed: true,
        };
        curves.push(scaled_run(SkylinePruner::build(cfg, &mut ledger()).expect("build"), &stream));
    }
    for i in 0..curves[0].len() {
        let mut cells = vec![curves[0][i].0.to_string()];
        for c in &curves {
            cells.push(frac(c[i].1));
        }
        r.row(cells);
    }
    r
}

/// Panel (c): TOP N (randomized, d=4096) across w, vs scale.
pub fn panel_c(scale: Scale) -> Report {
    let m = scale.entries(160_000, 20_000_000);
    let stream: Vec<Vec<u64>> =
        streams::random_values(m, 1 << 31, SEED ^ 0xC).into_iter().map(|v| vec![v]).collect();
    let ws = [4usize, 6, 8, 12];
    let mut r = Report::new(
        "fig11c",
        "TOP N (rand, d=4096) unpruned fraction vs entries, per w",
        &["entries", "w=4", "w=6", "w=8", "w=12"],
    );
    let mut curves = Vec::new();
    for w in ws {
        curves.push(scaled_run(
            TopNRandPruner::build(
                TopNRandConfig { rows: 4096, cols: w, seed: SEED },
                &mut ledger(),
            )
            .expect("build"),
            &stream,
        ));
    }
    for i in 0..curves[0].len() {
        let mut cells = vec![curves[0][i].0.to_string()];
        for c in &curves {
            cells.push(frac(c[i].1));
        }
        r.row(cells);
    }
    r
}

/// Panel (d): GROUP BY (MAX, d=4096) across w, vs scale.
pub fn panel_d(scale: Scale) -> Report {
    let m = scale.entries(160_000, 20_000_000);
    let stream: Vec<Vec<u64>> = streams::keyed_values(m, 5_000, 1 << 20, SEED ^ 0xD)
        .into_iter()
        .map(|kv| kv.to_vec())
        .collect();
    let ws = [2usize, 4, 6, 8, 10];
    let mut r = Report::new(
        "fig11d",
        "GROUP BY (MAX, d=4096) unpruned fraction vs entries, per w",
        &["entries", "w=2", "w=4", "w=6", "w=8", "w=10"],
    );
    let mut curves = Vec::new();
    for w in ws {
        curves.push(scaled_run(
            GroupByPruner::build(
                GroupByConfig { rows: 4096, cols: w, agg: AggKind::Max, key_bits: 31, seed: SEED },
                &mut ledger(),
            )
            .expect("build"),
            &stream,
        ));
    }
    for i in 0..curves[0].len() {
        let mut cells = vec![curves[0][i].0.to_string()];
        for c in &curves {
            cells.push(frac(c[i].1));
        }
        r.row(cells);
    }
    r
}

/// Panel (e): JOIN across filter size, vs scale (re-run per scale point —
/// the two-pass structure has no cumulative form).
pub fn panel_e(scale: Scale) -> Report {
    let n_full = scale.entries(40_000, 2_000_000);
    // Scaled-down sizes for the same reason as Figure 10e: at quick-scale
    // key counts, megabyte filters never saturate.
    let sizes_kb = [16u64, 64, 256, 1024];
    let mut r = Report::new(
        "fig11e",
        "JOIN unpruned fraction (pass 2) vs entries, per filter size",
        &["entries", "16KB", "64KB", "256KB", "1MB"],
    );
    for step in 1..=4usize {
        let n = n_full * step / 4;
        let (keys_a, keys_b) = streams::join_streams(n, n, 0.10, SEED ^ 0xE);
        let mut cells = vec![(2 * n).to_string()];
        for size_kb in sizes_kb {
            let cfg = JoinConfig {
                m_bits: size_kb * 1024 * 8,
                kind: BloomKind::Classic { h: 3 },
                mode: JoinMode::TwoPass,
                fid_a: 0,
                fid_b: 1,
                seed: SEED,
            };
            let mut p =
                StandalonePruner::new(JoinPruner::build(cfg, &mut ledger()).expect("build"));
            for &k in &keys_a {
                p.offer_for_fid(0, &[k]).expect("run");
            }
            for &k in &keys_b {
                p.offer_for_fid(1, &[k]).expect("run");
            }
            p.program_mut().control(&ControlMsg::SetPhase(2)).expect("phase");
            p.reset_stats();
            for &k in &keys_a {
                p.offer_for_fid(0, &[k]).expect("run");
            }
            for &k in &keys_b {
                p.offer_for_fid(1, &[k]).expect("run");
            }
            cells.push(frac(p.stats().unpruned_fraction()));
        }
        r.row(cells);
    }
    r.note("more keys → more Bloom false positives → worse pruning at fixed size");
    r
}

/// Panel (f): HAVING across counters per row, vs scale.
pub fn panel_f(scale: Scale) -> Report {
    let m = scale.entries(160_000, 20_000_000);
    let keys = 2_000;
    let stream: Vec<Vec<u64>> =
        streams::revenue_stream(m, keys, SEED ^ 0xF).into_iter().map(|kv| kv.to_vec()).collect();
    let threshold = (m / keys) as u64 * 50 * 3;
    let ws = [32usize, 64, 128, 256, 512];
    let mut r = Report::new(
        "fig11f",
        "HAVING (3 CM rows) unpruned fraction vs entries, per counters/row",
        &["entries", "w=32", "w=64", "w=128", "w=256", "w=512"],
    );
    let mut curves = Vec::new();
    for w in ws {
        let cfg = HavingConfig {
            cm_rows: 3,
            cm_counters: w,
            threshold,
            agg: HavingAgg::Sum,
            dedup_rows: 2048,
            dedup_cols: 2,
            seed: SEED,
        };
        curves.push(scaled_run(HavingPruner::build(cfg, &mut ledger()).expect("build"), &stream));
    }
    for i in 0..curves[0].len() {
        let mut cells = vec![curves[0][i].0.to_string()];
        for c in &curves {
            cells.push(frac(c[i].1));
        }
        r.row(cells);
    }
    r.note("output grows with the data (more keys qualify), so pruning degrades");
    r
}

/// All six panels.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let scale = ctx.scale;
    vec![
        panel_a(scale),
        panel_b(scale),
        panel_c(scale),
        panel_d(scale),
        panel_e(scale),
        panel_f(scale),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(r: &Report, row: usize, col: usize) -> f64 {
        r.rows[row][col].parse().expect("numeric")
    }

    #[test]
    fn distinct_improves_with_scale() {
        let r = panel_a(Scale::Quick);
        let first = parse(&r, 0, 4); // d=16384 curve
        let last = parse(&r, r.rows.len() - 1, 4);
        assert!(last < first, "DISTINCT should improve with scale: {first} -> {last}");
    }

    #[test]
    fn topn_improves_with_scale() {
        let r = panel_c(Scale::Quick);
        let first = parse(&r, 0, 1);
        let last = parse(&r, r.rows.len() - 1, 1);
        assert!(last < first);
    }

    #[test]
    fn join_degrades_with_scale() {
        let r = panel_e(Scale::Quick);
        // Smallest filter, growing data: unpruned fraction must not shrink.
        let first = parse(&r, 0, 1);
        let last = parse(&r, r.rows.len() - 1, 1);
        assert!(last >= first * 0.9, "JOIN should degrade (or flatline): {first} -> {last}");
    }

    #[test]
    fn groupby_improves_with_scale() {
        let r = panel_d(Scale::Quick);
        let first = parse(&r, 0, 5);
        let last = parse(&r, r.rows.len() - 1, 5);
        assert!(last < first);
    }
}

//! Streamed vs barrier execution: what overlapping the merge buys.
//!
//! The `shards` sweep shows the barrier axis, the `planner` sweep shows
//! the layout choice; this experiment shows the *dataflow* choice. On the
//! planner-adversarial workloads where shard completion times spread the
//! most — zipf(1.5) key skew and the single-hot-key degenerate — the
//! barrier twin joins every worker before the master folds a single
//! survivor, while the streamed runtime folds early shards' batches
//! behind the straggler and may re-fit boundaries mid-run.
//!
//! Two bars are asserted inline on every run, mirroring the acceptance
//! criteria: on the zipf(1.5) workload the streamed run's modelled
//! completion is **never slower than the barrier run's** (small noise
//! allowance — both are wall-clock at quick scale), and its measured
//! `overlap_seconds` is **strictly positive** — the merge really did run
//! while workers were still pruning.

use crate::report::secs;
use crate::{Report, RunCtx};
use cheetah_core::ShardPartitioner;
use cheetah_db::{Cluster, DbQuery, ShardSpec, ShardedRun};
use cheetah_runtime::{StreamSpec, StreamedExecution, StreamedRun};
use cheetah_workloads::PlannerAdversary;

const LINK_GBPS: f64 = 10.0;
/// Wall-clock repetitions per point (best-of, to shave scheduler noise
/// off the inline assertions).
const REPS: usize = 3;
/// Noise allowance on the streamed ≤ barrier bar. The bar is asserted on
/// the *workload aggregate* across the routing-agnostic families —
/// individual sub-millisecond quick-scale points jitter by more than the
/// overlap win, the sum does not. It exists to prove the overlap is
/// real, not to police microseconds.
const NOISE: f64 = 1.10;

fn barrier_completion(run: &ShardedRun) -> f64 {
    run.breakdown.completion_seconds(LINK_GBPS)
}

fn streamed_completion(run: &StreamedRun) -> f64 {
    run.breakdown.completion_seconds(LINK_GBPS)
}

/// Build the comparison.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let rows = ctx.scale.entries(20_000, 2_000_000);
    let shards = ctx.shards.iter().copied().max().unwrap_or(4).clamp(2, 8);
    let cluster = Cluster::default();
    let families: Vec<(&str, DbQuery)> = vec![
        ("distinct", DbQuery::Distinct { col: 0 }),
        ("groupby-max", DbQuery::GroupByMax { key_col: 0, val_col: 1 }),
        ("topn", DbQuery::TopN { order_col: 1, n: 100 }),
        ("having-sum", DbQuery::HavingSum { key_col: 0, val_col: 2, threshold: 40_000 }),
    ];

    let mut r = Report::new(
        "runtime",
        "Streamed runtime vs barrier sharded (adversarial workloads)",
        &[
            "workload",
            "query",
            "dataflow",
            "completion",
            "worker",
            "master",
            "overlap",
            "replans",
            "batches",
        ],
    );
    for adv in [PlannerAdversary::Zipf(1.5), PlannerAdversary::SingleHotKey] {
        let table = adv.table(rows, 8, 0xC4_11EE);
        let spec = ShardSpec::new(shards, ShardPartitioner::Hash);
        let streamed_spec = StreamSpec::fixed(spec);
        let mut asserted_barrier = 0.0f64;
        let mut asserted_streamed = 0.0f64;
        for (name, q) in &families {
            let single = cluster.run_cheetah(q, &table, None).expect("plan fits");

            let mut barrier =
                cluster.run_cheetah_sharded(q, &table, None, &spec).expect("plan fits");
            let mut streamed =
                cluster.run_cheetah_streamed(q, &table, None, &streamed_spec).expect("plan fits");
            let mut max_overlap = streamed.breakdown.overlap_seconds;
            for _ in 1..REPS {
                let b = cluster.run_cheetah_sharded(q, &table, None, &spec).expect("plan fits");
                if barrier_completion(&b) < barrier_completion(&barrier) {
                    barrier = b;
                }
                let s =
                    cluster.run_cheetah_streamed(q, &table, None, &streamed_spec).expect("fits");
                max_overlap = max_overlap.max(s.breakdown.overlap_seconds);
                if streamed_completion(&s) < streamed_completion(&streamed) {
                    streamed = s;
                }
            }
            assert_eq!(single.output, barrier.output, "{name}: barrier diverged");
            assert_eq!(single.output, streamed.output, "{name}: streamed diverged");

            let b = &barrier.breakdown;
            r.row(vec![
                adv.name(),
                (*name).to_string(),
                "barrier".into(),
                secs(barrier_completion(&barrier)),
                secs(b.worker_seconds),
                secs(b.master_seconds),
                secs(0.0),
                "0".into(),
                "-".into(),
            ]);
            let s = &streamed.breakdown;
            r.row(vec![
                adv.name(),
                (*name).to_string(),
                "streamed".into(),
                secs(streamed_completion(&streamed)),
                secs(s.worker_seconds),
                secs(s.master_seconds),
                secs(s.overlap_seconds),
                s.replans.to_string(),
                streamed.batches.to_string(),
            ]);

            // The acceptance bars, on the workload they are stated over.
            // Key-holistic families (single round — nothing to overlap at
            // the input side) are reported but not asserted: at toy scale
            // their framing overhead has no straggler to hide behind.
            if matches!(adv, PlannerAdversary::Zipf(1.5)) && q.merge_routing_agnostic() {
                asserted_barrier += barrier_completion(&barrier);
                asserted_streamed += streamed_completion(&streamed);
                // Judged across the reps, not just the fastest one — a
                // descheduled master in a single rep is noise, every rep
                // showing zero overlap is a broken runtime.
                assert!(max_overlap > 0.0, "{name}: no merge work overlapped the workers");
            }
        }
        if matches!(adv, PlannerAdversary::Zipf(1.5)) {
            assert!(
                asserted_streamed <= asserted_barrier * NOISE,
                "streamed ({asserted_streamed:.4}s) slower than barrier \
                 ({asserted_barrier:.4}s) across the zipf(1.5) families",
            );
        }
    }
    r.note(format!(
        "{rows} rows, {shards} hash shards; streamed rounds/batching per StreamSpec defaults; \
         outputs verified equal to the unsharded run at every point"
    ));
    r.note(
        "inline bars on zipf(1.5), routing-agnostic families: streamed completion ≤ barrier \
         (noise allowance) and overlap_seconds > 0; having-sum (single round) is reported only",
    );
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn comparison_covers_both_dataflows_on_both_adversaries() {
        // run() itself asserts the acceptance bars inline; this pins the
        // report shape: 2 workloads × 4 families × 2 dataflow rows.
        let ctx = RunCtx { scale: Scale::Quick, shards: vec![4] };
        let r = &run(&ctx)[0];
        assert_eq!(r.rows.len(), 2 * 4 * 2);
        assert_eq!(r.rows.iter().filter(|row| row[2] == "streamed").count(), 8);
        // Streamed rows carry live batch counts.
        for row in r.rows.iter().filter(|row| row[2] == "streamed") {
            let batches: u64 = row[8].parse().expect("batch count");
            assert!(batches > 0, "{row:?}");
        }
    }
}

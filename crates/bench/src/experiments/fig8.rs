//! Figure 8 — delay breakdown of Spark vs Cheetah at 10G and 20G.
//!
//! The paper's stacked bars: computation / network / other, for DISTINCT
//! and (Max) GROUP BY. Spark's bottleneck is worker computation — a faster
//! NIC does not help it. Cheetah moves the computation to the switch and
//! becomes network-bound: doubling the link rate halves its completion
//! time (§8.2.3).

use crate::report::secs;
use crate::{Report, RunCtx};
use cheetah_db::{Cluster, DbQuery};
use cheetah_workloads::bigdata::BigDataConfig;

/// Build the figure.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let scale = ctx.scale;
    let bd =
        BigDataConfig { uservisits_rows: scale.entries(150_000, 5_000_000), ..Default::default() };
    let table = bd.uservisits();
    let cluster = Cluster::default();
    let queries = [
        ("Distinct", DbQuery::Distinct { col: BigDataConfig::UV_USER_AGENT }),
        (
            "Group-By",
            DbQuery::GroupByMax {
                key_col: BigDataConfig::UV_USER_AGENT,
                val_col: BigDataConfig::UV_AD_REVENUE,
            },
        ),
    ];
    let mut r = Report::new(
        "fig8",
        "Delay breakdown: computation / network / total, per system and rate",
        &["query", "system", "computation", "network", "total"],
    );
    for (name, q) in queries {
        let base = cluster.run_baseline(&q, &table, None);
        let chee = cluster.run_cheetah(&q, &table, None).expect("plan");
        assert_eq!(base.output, chee.output);
        for (system, b, gbps) in [
            ("Spark 10G", &base.breakdown, 10.0),
            ("Spark 20G", &base.breakdown, 20.0),
            ("Cheetah 10G", &chee.breakdown, 10.0),
            ("Cheetah 20G", &chee.breakdown, 20.0),
        ] {
            let comp = b.worker_seconds + b.master_seconds;
            let net = b.network_seconds(gbps);
            r.row(vec![
                name.to_string(),
                system.to_string(),
                secs(comp),
                secs(net),
                secs(b.completion_seconds(gbps)),
            ]);
        }
    }
    r.note("Spark barely moves 10G→20G (compute-bound); Cheetah's network cost halves");
    r.note(format!("{} UserVisits rows, 5 workers", bd.uservisits_rows));
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse_secs(s: &str) -> f64 {
        if let Some(x) = s.strip_suffix("ms") {
            x.parse::<f64>().unwrap() * 1e-3
        } else if let Some(x) = s.strip_suffix("µs") {
            x.parse::<f64>().unwrap() * 1e-6
        } else {
            s.strip_suffix('s').unwrap().parse::<f64>().unwrap()
        }
    }

    #[test]
    fn cheetah_network_halves_at_20g() {
        let r = &run(&RunCtx::quick())[0];
        let net_of = |system: &str, query: &str| {
            let row = r.rows.iter().find(|row| row[0] == query && row[1] == system).expect("row");
            parse_secs(&row[3])
        };
        for q in ["Distinct", "Group-By"] {
            let n10 = net_of("Cheetah 10G", q);
            let n20 = net_of("Cheetah 20G", q);
            assert!((n10 / n20 - 2.0).abs() < 0.05, "{q}: {n10} vs {n20}");
        }
    }

    #[test]
    fn cheetah_moves_more_bytes_than_spark() {
        // Cheetah streams the whole column uncompressed; Spark ships small
        // compressed partials — that is the structural trade the paper
        // describes.
        let r = &run(&RunCtx::quick())[0];
        let net_of = |system: &str| {
            let row =
                r.rows.iter().find(|row| row[0] == "Distinct" && row[1] == system).expect("row");
            parse_secs(&row[3])
        };
        assert!(net_of("Cheetah 10G") > net_of("Spark 10G"));
    }
}

//! Table 2 — resource consumption of the pruning algorithms.
//!
//! The paper's table lists, per algorithm at default parameters, the
//! stages, ALUs, SRAM and TCAM consumed. Here every number is **read back
//! from the resource ledger** after actually building the program for a
//! Tofino-like profile — not hand-written — so the table doubles as a
//! regression test that the implementations still fit the envelope the
//! paper claims.

use crate::{Report, RunCtx};
use cheetah_core::{
    DistinctConfig, DistinctPruner, EvictionPolicy, FilterConfig, FilterPruner, GroupByConfig,
    GroupByPruner, HavingAgg, HavingConfig, HavingPruner, JoinConfig, JoinPruner, SkylineConfig,
    SkylinePolicy, SkylinePruner, TopNDetConfig, TopNDetPruner, TopNRandConfig, TopNRandPruner,
};
use cheetah_switch::{SwitchProfile, UsageSummary};

fn fmt_row(name: &str, defaults: &str, u: UsageSummary) -> Vec<String> {
    vec![
        name.to_string(),
        defaults.to_string(),
        u.stages_used.to_string(),
        u.alus.to_string(),
        format!("{:.1} KB", u.sram_kb()),
        u.tcam_entries.to_string(),
        u.rules.to_string(),
    ]
}

/// Build the table.
pub fn run(_ctx: &RunCtx) -> Vec<Report> {
    let profile = SwitchProfile::tofino2();
    let mut r = Report::new(
        "table2",
        "Resource consumption of the pruning algorithms (ledger-measured)",
        &["algorithm", "defaults", "stages", "ALUs", "SRAM", "TCAM", "rules"],
    );

    let distinct_lru = DistinctConfig::paper_default();
    r.row(fmt_row(
        "DISTINCT (LRU)",
        "w=2, d=4096",
        DistinctPruner::table2_row(distinct_lru, profile.clone()).expect("fits"),
    ));
    let distinct_fifo =
        DistinctConfig { policy: EvictionPolicy::Fifo, ..DistinctConfig::paper_default() };
    r.row(fmt_row(
        "DISTINCT (FIFO*)",
        "w=2, d=4096",
        DistinctPruner::table2_row(distinct_fifo, profile.clone()).expect("fits"),
    ));

    r.row(fmt_row(
        "SKYLINE (SUM)",
        "D=2, w=10",
        SkylinePruner::table2_row(
            SkylineConfig::paper_default(SkylinePolicy::Sum),
            profile.clone(),
        )
        .expect("fits"),
    ));
    r.row(fmt_row(
        "SKYLINE (APH)",
        "D=2, w=10",
        SkylinePruner::table2_row(
            SkylineConfig::paper_default(SkylinePolicy::Aph { beta: 1 << 8 }),
            profile.clone(),
        )
        .expect("fits"),
    ));

    r.row(fmt_row(
        "TOP N (Det)",
        "N=250, w=4",
        TopNDetPruner::table2_row(TopNDetConfig::paper_default(), profile.clone()).expect("fits"),
    ));
    r.row(fmt_row(
        "TOP N (Rand)",
        "N=250, w=4, d=4096",
        TopNRandPruner::table2_row(TopNRandConfig::paper_default(), profile.clone()).expect("fits"),
    ));

    r.row(fmt_row(
        "GROUP BY",
        "w=8, d=4096",
        GroupByPruner::table2_row(GroupByConfig::paper_default(), profile.clone()).expect("fits"),
    ));

    r.row(fmt_row(
        "JOIN (BF*)",
        "M=4MB, H=3",
        JoinPruner::table2_row(JoinConfig::paper_default(), profile.clone()).expect("fits"),
    ));
    let rbf = JoinConfig {
        kind: cheetah_core::BloomKind::Register { h: 3 },
        ..JoinConfig::paper_default()
    };
    r.row(fmt_row(
        "JOIN (RBF)",
        "M=4MB, H=3",
        JoinPruner::table2_row(rbf, profile.clone()).expect("fits"),
    ));

    let having = HavingConfig {
        cm_rows: 3,
        cm_counters: 1024,
        threshold: 1_000_000,
        agg: HavingAgg::Sum,
        dedup_rows: 1024,
        dedup_cols: 2,
        seed: 0x7AB1E2,
    };
    r.row(fmt_row(
        "HAVING",
        "w=1024, d=3",
        HavingPruner::table2_row(having, profile.clone()).expect("fits"),
    ));

    r.row(fmt_row(
        "Filtering",
        "3 atoms (§4.1 example)",
        FilterPruner::table2_row(
            FilterConfig::paper_example(cheetah_core::ExternalMode::Tautology),
            profile,
        )
        .expect("fits"),
    ));

    r.note("SRAM/ALU/TCAM read back from the ResourceLedger after building each program");
    r.note("JOIN charges BOTH side filters (paper's M is per filter); * = shared-memory rows");
    r.note("HAVING includes the candidate-dedup matrix the paper describes with §4.2");
    r.note("SKYLINE uses the packed layout (score+dims share a stage) so w=10 fits 20 stages");
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_paper_algorithm_appears() {
        let r = &run(&RunCtx::quick())[0];
        let names: Vec<&str> = r.rows.iter().map(|row| row[0].as_str()).collect();
        for want in ["DISTINCT", "SKYLINE", "TOP N", "GROUP BY", "JOIN", "HAVING", "Filtering"] {
            assert!(names.iter().any(|n| n.contains(want)), "missing {want}");
        }
        assert!(r.rows.len() >= 10);
    }

    #[test]
    fn distinct_row_matches_paper_formula() {
        let r = &run(&RunCtx::quick())[0];
        let lru = r.rows.iter().find(|row| row[0].contains("LRU")).expect("row");
        // w stages, w ALUs, d·w·64b = 64 KB.
        assert_eq!(lru[2], "2");
        assert_eq!(lru[3], "2");
        assert_eq!(lru[4], "64.0 KB");
    }

    #[test]
    fn aph_charges_tcam() {
        let r = &run(&RunCtx::quick())[0];
        let aph = r.rows.iter().find(|row| row[0].contains("APH")).expect("row");
        assert_eq!(aph[5], "128", "64 MSB rules per dimension, D=2");
    }
}

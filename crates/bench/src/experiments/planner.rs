//! Planned vs fixed-spec sweep: what sample-driven planning buys.
//!
//! The `shards` sweep shows the axis; this experiment shows the *choice*:
//! on a zipf(1.5) key-skewed workload (the planner-adversarial regime
//! where fixed range routing degenerates), every fixed `ShardSpec` in the
//! sweep — both partitioners × the context's shard axis — is measured
//! against the planner's single chosen plan. The acceptance bar is
//! asserted inline on every run: **the planned layout is never slower
//! than the worst fixed spec in the sweep** (it usually beats the median
//! too, but only the worst-case bound is load-bearing — that is what a
//! planner is *for*).

use crate::report::secs;
use crate::{Report, RunCtx};
use cheetah_core::ShardPartitioner;
use cheetah_db::{Cluster, DbQuery, ShardPlanner, ShardSpec, ShardedRun, Tables};
use cheetah_workloads::PlannerAdversary;

const LINK_GBPS: f64 = 10.0;
/// Wall-clock repetitions per point (best-of, to shave scheduler noise
/// off the inline worst-case assertion).
const REPS: usize = 2;

fn completion(run: &ShardedRun) -> f64 {
    run.breakdown.completion_seconds(LINK_GBPS)
}

fn best_of<F: FnMut() -> ShardedRun>(mut f: F) -> ShardedRun {
    let mut best = f();
    for _ in 1..REPS {
        let next = f();
        if completion(&next) < completion(&best) {
            best = next;
        }
    }
    best
}

fn push_row(r: &mut Report, query: &str, spec: &str, run: &ShardedRun) {
    r.row(vec![
        query.to_string(),
        spec.to_string(),
        secs(completion(run)),
        secs(run.breakdown.worker_seconds),
        secs(run.breakdown.master_seconds),
        run.per_shard.iter().map(|s| s.rows).max().unwrap_or(0).to_string(),
    ]);
}

/// Build the sweep.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let rows = ctx.scale.entries(20_000, 2_000_000);
    let table = PlannerAdversary::Zipf(1.5).table(rows, 8, 0x9_1A2D);
    let right = PlannerAdversary::Zipf(1.5).table(rows / 2, 4, 0xB0B5);
    let cluster = Cluster::default();
    let planner = ctx.planner();
    let families: Vec<(&str, DbQuery)> = vec![
        ("distinct", DbQuery::Distinct { col: 0 }),
        ("groupby-max", DbQuery::GroupByMax { key_col: 0, val_col: 1 }),
        ("join", DbQuery::Join { left_key: 0, right_key: 0 }),
    ];

    let mut r = Report::new(
        "planner",
        "Planned vs fixed shard specs (zipf(1.5) key skew)",
        &["query", "spec", "completion", "worker", "master", "max_shard_rows"],
    );
    for (name, q) in &families {
        let right_of = q.is_binary().then_some(&right);
        let single = cluster.run_cheetah(q, &table, right_of).expect("plan fits");

        let mut worst: Option<(String, f64)> = None;
        for partitioner in [ShardPartitioner::Hash, ShardPartitioner::Range] {
            for &n in &ctx.shards {
                let spec = ShardSpec::new(n, partitioner);
                let run = best_of(|| {
                    cluster.run_cheetah_sharded(q, &table, right_of, &spec).expect("plan fits")
                });
                assert_eq!(single.output, run.output, "{name}: fixed spec diverged");
                let label = format!("{}@{}", partitioner.name(), n);
                let c = completion(&run);
                if worst.as_ref().is_none_or(|(_, w)| c > *w) {
                    worst = Some((label.clone(), c));
                }
                push_row(&mut r, name, &label, &run);
            }
        }

        let planned = best_of(|| {
            cluster.run_cheetah_planned(q, &table, right_of, &planner).expect("plan fits")
        });
        assert_eq!(single.output, planned.output, "{name}: planned run diverged");
        let plan = planned.plan.as_ref().expect("planned run records its plan");
        let label = format!("planned:{}@{}", plan.partitioner().name(), plan.shards());
        push_row(&mut r, name, &label, &planned);

        // The acceptance bar: never slower than the worst fixed spec in
        // the sweep. The comparison is wall-clock on sub-millisecond
        // quick-scale runs, so the bound carries a noise allowance — it
        // exists to catch a planner picking a *catastrophic* layout
        // (the degenerate hot-shard corner), not to police microseconds.
        let (worst_label, worst_secs) = worst.expect("at least one fixed spec");
        assert!(
            completion(&planned) <= worst_secs * 1.25,
            "{name}: planned layout {label} ({:.4}s) is slower than the worst fixed spec \
             {worst_label} ({worst_secs:.4}s)",
            completion(&planned),
        );
        r.note(format!(
            "{name}: planner chose {label} — {}; worst fixed spec was {worst_label}",
            plan.report.reason
        ));

        // The calibration story (ROADMAP): how far the default cost
        // constants sit from this machine, and how much of that gap a
        // measured calibration closes. The model prices the worker and
        // master phases (not the link transfer), so the measured side is
        // the same phase sum.
        let modelled = |run: &ShardedRun| {
            let p = run.plan.as_ref().expect("planned run records its plan");
            p.report
                .curve
                .iter()
                .find(|c| c.shards == p.report.shards)
                .map(|c| c.total())
                .unwrap_or(0.0)
        };
        let phases = |run: &ShardedRun| run.breakdown.worker_seconds + run.breakdown.master_seconds;
        let default_gap = (modelled(&planned) - phases(&planned)).abs();
        let tables = match right_of {
            Some(rt) => Tables::binary(&table, rt),
            None => Tables::unary(&table),
        };
        let calibrated = ShardPlanner::new(planner.cfg.clone().calibrate(&cluster, &tables));
        let cal_run = best_of(|| {
            cluster.run_cheetah_planned(q, &table, right_of, &calibrated).expect("plan fits")
        });
        assert_eq!(single.output, cal_run.output, "{name}: calibrated run diverged");
        let cal_gap = (modelled(&cal_run) - phases(&cal_run)).abs();
        let cal = calibrated.cfg.calibration.expect("probe ran");
        r.note(format!(
            "{name}: modelled-vs-measured gap {:.3} ms with default constants, {:.3} ms \
             calibrated (measured {:.0} entries/s serialize, {:.1} µs/shard overhead)",
            default_gap * 1e3,
            cal_gap * 1e3,
            cal.measured_arrival_rate,
            cal.measured_overhead_seconds * 1e6,
        ));
    }
    r.note(format!(
        "left {} rows, right {} rows, zipf(1.5) keys; planned completion asserted ≤ the worst \
         fixed spec on every run",
        table.rows(),
        right.rows()
    ));
    vec![r]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Scale;

    #[test]
    fn sweep_compares_planned_against_every_fixed_spec() {
        // run() itself asserts the acceptance bar inline (planned never
        // slower than the worst fixed spec); this pins the report shape:
        // 3 families × (2 partitioners × 2 counts + 1 planned row), with
        // a per-family note explaining the planner's choice.
        let ctx = RunCtx { scale: Scale::Quick, shards: vec![1, 8] };
        let r = &run(&ctx)[0];
        assert_eq!(r.rows.len(), 3 * (2 * 2 + 1));
        let planned_rows: Vec<_> =
            r.rows.iter().filter(|row| row[1].starts_with("planned:")).collect();
        assert_eq!(planned_rows.len(), 3);
        assert!(r.notes.iter().any(|n| n.contains("planner chose")), "{:?}", r.notes);
        // Every family reports the calibration's modelled-vs-measured gap.
        assert_eq!(
            r.notes.iter().filter(|n| n.contains("modelled-vs-measured gap")).count(),
            3,
            "{:?}",
            r.notes
        );
    }
}

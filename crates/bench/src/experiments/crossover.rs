//! The crossover scale-sweep as a human-readable experiment: the same
//! measurement CI gates through `BENCH_crossover.json`, rendered as one
//! table per family with the crossover point marked.

use crate::crossover::{run_crossover, CROSSOVER_LINK_GBPS};
use crate::report::secs;
use crate::{Report, RunCtx, Scale};

/// Run the sweep over the context's shard axis.
pub fn run(ctx: &RunCtx) -> Vec<Report> {
    let (rows, reps) = match ctx.scale {
        Scale::Quick => (6_000, 3),
        Scale::Full => (60_000, 5),
    };
    let sweep = run_crossover(42, rows, reps, &ctx.shards);
    let mut report = Report::new(
        "crossover",
        format!("Where parallelism starts paying ({rows} rows, modelled {CROSSOVER_LINK_GBPS:.0}G link)"),
        &["family", "shards", "modelled completion", "wall", "ops/s", "crossover"],
    );
    for f in &sweep.families {
        for p in &f.points {
            let mark = if f.crossover_shards == Some(p.shards) { "<- first win" } else { "" };
            report.row(vec![
                f.name.clone(),
                p.shards.to_string(),
                secs(p.completion_seconds),
                secs(p.wall_seconds),
                format!("{:.0}", rows as f64 / p.wall_seconds.max(1e-12)),
                mark.to_string(),
            ]);
        }
    }
    report.note(
        "crossover = smallest shard count whose modelled completion beats 1 shard; \
         worker phase is the max of per-shard measured times, so the parallel win is \
         visible even on a single-core runner",
    );
    report.note(
        "routing keys, sharder fitting, and the shard split are hoisted out of the \
         timed region — workers hold their slices resident, as in deployment",
    );
    vec![report]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn report_has_one_row_per_family_and_shard() {
        let mut ctx = RunCtx::quick();
        ctx.shards = vec![1, 2];
        let reports = run(&ctx);
        assert_eq!(reports.len(), 1);
        assert_eq!(reports[0].rows.len(), 3 * 2);
    }
}

//! # cheetah-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation. Each experiment
//! is a function `run(scale) -> Report` (or several reports for
//! multi-panel figures) that regenerates the corresponding rows/series;
//! the `cheetah-experiments` binary runs them all and writes text + CSV.
//!
//! | experiment | paper artifact |
//! |---|---|
//! | [`experiments::table2`] | Table 2 — per-algorithm switch resources |
//! | [`experiments::table3`] | Table 3 — hardware comparison (constants) |
//! | [`experiments::fig5`] | Fig. 5 — completion time, 9 queries, Spark vs Cheetah |
//! | [`experiments::fig6`] | Fig. 6 — workers / data-scale sweeps (DISTINCT) |
//! | [`experiments::fig7`] | Fig. 7 — NetAccel result-drain overhead |
//! | [`experiments::fig8`] | Fig. 8 — delay breakdown at 10G/20G |
//! | [`experiments::fig9`] | Fig. 9 — blocking master latency vs unpruned fraction |
//! | [`experiments::fig10`] | Fig. 10a–f — pruning rate vs resources |
//! | [`experiments::fig11`] | Fig. 11a–f — pruning rate vs data scale |
//! | [`experiments::fig12_13`] | Figs. 12/13 — server vs switch-CPU processing |
//!
//! `Scale::Quick` keeps every experiment in CI-friendly territory;
//! `Scale::Full` runs the paper-sized streams (tens of millions of
//! entries) and takes minutes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod experiments;
pub mod report;

pub use report::Report;

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small streams; seconds per experiment.
    Quick,
    /// Paper-sized streams; minutes.
    Full,
}

impl Scale {
    /// Multiply a quick-scale count up for full scale.
    pub fn entries(&self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

//! # cheetah-bench — the experiment harness
//!
//! One module per table/figure of the paper's evaluation. Each experiment
//! is a function `run(scale) -> Report` (or several reports for
//! multi-panel figures) that regenerates the corresponding rows/series;
//! the `cheetah-experiments` binary runs them all and writes text + CSV.
//!
//! | experiment | paper artifact |
//! |---|---|
//! | [`experiments::table2`] | Table 2 — per-algorithm switch resources |
//! | [`experiments::table3`] | Table 3 — hardware comparison (constants) |
//! | [`experiments::fig5`] | Fig. 5 — completion time, 9 queries, Spark vs Cheetah |
//! | [`experiments::fig6`] | Fig. 6 — workers / data-scale sweeps (DISTINCT) |
//! | [`experiments::fig7`] | Fig. 7 — NetAccel result-drain overhead |
//! | [`experiments::fig8`] | Fig. 8 — delay breakdown at 10G/20G |
//! | [`experiments::fig9`] | Fig. 9 — blocking master latency vs unpruned fraction |
//! | [`experiments::fig10`] | Fig. 10a–f — pruning rate vs resources |
//! | [`experiments::fig11`] | Fig. 11a–f — pruning rate vs data scale |
//! | [`experiments::fig12_13`] | Figs. 12/13 — server vs switch-CPU processing |
//!
//! `Scale::Quick` keeps every experiment in CI-friendly territory;
//! `Scale::Full` runs the paper-sized streams (tens of millions of
//! entries) and takes minutes.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod crossover;
pub mod experiments;
pub mod report;
pub mod smoke;
pub mod workload;

pub use crossover::{run_crossover, run_crossover_default, CrossoverFamily, CrossoverReport};
pub use report::Report;
pub use smoke::{run_smoke, SmokeFamily, SmokeReport};
pub use workload::{ArrivalMode, ServingWorkload, TenantSpec};

/// Experiment scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Small streams; seconds per experiment.
    Quick,
    /// Paper-sized streams; minutes.
    Full,
}

impl Scale {
    /// Multiply a quick-scale count up for full scale.
    pub fn entries(&self, quick: usize, full: usize) -> usize {
        match self {
            Scale::Quick => quick,
            Scale::Full => full,
        }
    }
}

/// Shared experiment inputs: the scale plus the sweep axes an experiment
/// may honour. Today that is one axis — the worker-shard counts driven by
/// `cheetah-experiments --shards` — so adding the next axis (batch sizes,
/// link rates…) does not change every experiment signature again.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RunCtx {
    /// Stream/table sizes.
    pub scale: Scale,
    /// Worker-shard counts for sharded-execution sweeps (ignored by
    /// experiments without a shard axis).
    pub shards: Vec<usize>,
}

impl RunCtx {
    /// A context at `scale` with the default 1→16 shard axis.
    pub fn new(scale: Scale) -> Self {
        Self { scale, shards: vec![1, 2, 4, 8, 16] }
    }

    /// Quick scale, default axes — what unit tests and smoke runs use.
    pub fn quick() -> Self {
        Self::new(Scale::Quick)
    }

    /// The shard planner the sharded experiments use: candidate shard
    /// counts bounded by this context's `--shards` axis, so a sweep and
    /// its planned comparison row search the same space.
    pub fn planner(&self) -> cheetah_db::ShardPlanner {
        cheetah_db::ShardPlanner::new(cheetah_db::PlannerConfig {
            max_shards: self.shards.iter().copied().max().unwrap_or(8),
            ..cheetah_db::PlannerConfig::default()
        })
    }
}

//! Multi-tenant serving workload generator: who asks what, when.
//!
//! The serving experiments and the `@serving` smoke family replay the
//! same deterministic request schedules, so a latency difference between
//! two runs is a scheduling/serving difference, never a workload one.
//! Two arrival disciplines:
//!
//! * **closed-loop** — each tenant keeps exactly one request in flight:
//!   the next submits when the previous completes. Throughput is
//!   whatever the plane sustains; latency is pure service + queueing.
//! * **open-loop** — each tenant submits on a fixed schedule regardless
//!   of completions (the "millions of users" shape: arrivals don't wait
//!   for you). Falling behind the schedule shows up as queue growth.
//!
//! Query mix and arrival jitter derive from `mix64` over the seed, the
//! tenant index, and the request index — no RNG state, so any request's
//! identity can be recomputed independently.

use cheetah_db::DbQuery;
use cheetah_switch::hash::mix64;

/// How requests enter the plane.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalMode {
    /// One in-flight request per tenant; next issues on completion.
    Closed,
    /// Fixed-rate schedule per tenant (requests per second), with
    /// deterministic sub-interval jitter.
    Open {
        /// Offered load per tenant, requests per second.
        rate_per_sec: f64,
    },
}

/// One tenant's slice of the workload.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Tenant id, as stamped into `ExecBreakdown::tenant`.
    pub name: String,
    /// Requests this tenant issues.
    pub requests: usize,
}

/// A reproducible multi-tenant request schedule over a shared query mix.
#[derive(Debug, Clone)]
pub struct ServingWorkload {
    /// The query shapes requests draw from.
    pub queries: Vec<DbQuery>,
    /// The tenants and their request counts.
    pub tenants: Vec<TenantSpec>,
    /// Arrival discipline.
    pub mode: ArrivalMode,
    /// Seed deriving the mix and the jitter.
    pub seed: u64,
}

impl ServingWorkload {
    /// A closed-loop workload: every named tenant issues `requests`
    /// requests drawn from `queries`.
    pub fn closed(names: &[&str], requests: usize, queries: Vec<DbQuery>, seed: u64) -> Self {
        Self {
            queries,
            tenants: names.iter().map(|n| TenantSpec { name: n.to_string(), requests }).collect(),
            mode: ArrivalMode::Closed,
            seed,
        }
    }

    /// An open-loop workload: every named tenant offers
    /// `rate_per_sec` requests per second until its `requests` run out.
    pub fn open(
        names: &[&str],
        requests: usize,
        queries: Vec<DbQuery>,
        rate_per_sec: f64,
        seed: u64,
    ) -> Self {
        let mut w = Self::closed(names, requests, queries, seed);
        w.mode = ArrivalMode::Open { rate_per_sec };
        w
    }

    /// Which query (index into [`queries`](ServingWorkload::queries))
    /// request `req` of tenant `tenant` runs. Pure function of the seed.
    pub fn query_index(&self, tenant: usize, req: usize) -> usize {
        let h = mix64(self.seed ^ ((tenant as u64) << 32) ^ req as u64);
        (h % self.queries.len().max(1) as u64) as usize
    }

    /// The query itself.
    pub fn query_of(&self, tenant: usize, req: usize) -> &DbQuery {
        &self.queries[self.query_index(tenant, req)]
    }

    /// When request `req` of tenant `tenant` enters the plane, seconds
    /// from workload start. `None` in closed-loop mode (arrivals are
    /// completion-driven, not scheduled).
    pub fn arrival_seconds(&self, tenant: usize, req: usize) -> Option<f64> {
        match self.mode {
            ArrivalMode::Closed => None,
            ArrivalMode::Open { rate_per_sec } => {
                // Deterministic jitter in [0, 1) of the interval keeps
                // tenants from submitting in lockstep.
                let h = mix64(self.seed ^ 0xA441 ^ ((tenant as u64) << 32) ^ req as u64);
                let jitter = (h >> 11) as f64 / (1u64 << 53) as f64;
                Some((req as f64 + jitter) / rate_per_sec.max(1e-9))
            }
        }
    }

    /// Requests across all tenants.
    pub fn total_requests(&self) -> usize {
        self.tenants.iter().map(|t| t.requests).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mix() -> Vec<DbQuery> {
        vec![
            DbQuery::Distinct { col: 0 },
            DbQuery::GroupByMax { key_col: 0, val_col: 1 },
            DbQuery::TopN { order_col: 1, n: 10 },
        ]
    }

    #[test]
    fn schedules_are_reproducible_and_seed_sensitive() {
        let a = ServingWorkload::closed(&["t0", "t1"], 50, mix(), 42);
        let b = ServingWorkload::closed(&["t0", "t1"], 50, mix(), 42);
        let c = ServingWorkload::closed(&["t0", "t1"], 50, mix(), 43);
        let seq =
            |w: &ServingWorkload| -> Vec<usize> { (0..50).map(|r| w.query_index(0, r)).collect() };
        assert_eq!(seq(&a), seq(&b), "same seed, same schedule");
        assert_ne!(seq(&a), seq(&c), "different seed, different schedule");
    }

    #[test]
    fn the_mix_covers_every_query_shape() {
        let w = ServingWorkload::closed(&["a", "b", "c", "d"], 64, mix(), 7);
        let mut seen = vec![false; w.queries.len()];
        for t in 0..w.tenants.len() {
            for r in 0..64 {
                seen[w.query_index(t, r)] = true;
            }
        }
        assert!(seen.iter().all(|s| *s), "64 requests x 4 tenants hit all shapes");
        assert_eq!(w.total_requests(), 256);
    }

    #[test]
    fn open_arrivals_are_monotone_and_rate_shaped() {
        let w = ServingWorkload::open(&["a"], 100, mix(), 200.0, 11);
        let times: Vec<f64> =
            (0..100).map(|r| w.arrival_seconds(0, r).expect("open mode schedules")).collect();
        for pair in times.windows(2) {
            assert!(pair[1] > pair[0], "arrivals must be strictly increasing");
        }
        // 100 requests at 200/s span ~half a second.
        assert!(times[99] < 0.51 && times[99] > 0.49, "last arrival at {}", times[99]);
        // Closed mode has no schedule.
        let closed = ServingWorkload::closed(&["a"], 10, mix(), 11);
        assert_eq!(closed.arrival_seconds(0, 0), None);
    }
}

//! The crossover scale-sweep behind CI's `BENCH_crossover.json` gate.
//!
//! The raw-speed question the smoke pass cannot answer: *at how many
//! shards does parallel execution beat running the query unsharded?*
//! This sweep runs three representative families over a shard-count
//! axis (default 1, 2, 4, 8) on the persistent worker pool — requests
//! pushed through the `Session` front door, pinned to the interpreted
//! barrier path at each swept shard count, with the session's layout
//! cache playing the resident-data role (a warm-up request routes each
//! layout outside the timed region: in deployment every worker holds
//! its slice from ingest on, so the shuffle is not query latency) —
//! and reports two numbers per family:
//!
//! * **crossover shard count** — the smallest swept shard count whose
//!   *modelled* completion ([`ExecBreakdown::completion_seconds`], the
//!   Figure 8 stacked-phase model at a fixed link rate) beats the
//!   1-shard run. The model is what makes this meaningful on a
//!   single-core CI runner: `worker_seconds` is the max of the
//!   per-shard measured times, so the parallel win shows up even when
//!   the shards were time-sliced onto one core.
//! * **best wall ops/sec** — raw measured throughput at the family's
//!   fastest swept point, gating absolute per-op cost alongside the
//!   model.
//!
//! The CI gate (`make bench-crossover`) fails when a family's crossover
//! moves *up* (parallelism started paying later than the checked-in
//! baseline says it should) or its best wall throughput regresses past
//! the tolerance — so the crossover can only ever move down.
//!
//! The JSON is hand-rolled, one family per line, like the smoke
//! report's: the parser only promises to read what
//! [`CrossoverReport::to_json`] writes.

use crate::smoke::SMOKE_SHARDS;
use cheetah_db::{Cluster, DbQuery, ExecBackend, ExecPath, Table};
use cheetah_net::ExecBreakdown;
use cheetah_serve::{QueryRequest, Session, SessionConfig};
use cheetah_workloads::SkewedTableConfig;
use std::sync::Arc;
use std::time::Instant;

/// Link rate the modelled completion is evaluated at (Gbit/s) — the
/// paper's 10G rack fabric.
pub const CROSSOVER_LINK_GBPS: f64 = 10.0;

/// One swept point of one family.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverPoint {
    /// Worker shard count.
    pub shards: usize,
    /// Modelled completion seconds (Figure 8 model at
    /// [`CROSSOVER_LINK_GBPS`]) of the best repetition.
    pub completion_seconds: f64,
    /// Measured wall seconds of the best repetition.
    pub wall_seconds: f64,
}

/// One family's sweep.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverFamily {
    /// Family id, e.g. `distinct`.
    pub name: String,
    /// Smallest swept shard count (> 1) whose modelled completion beats
    /// the 1-shard point; `None` when no swept point wins.
    pub crossover_shards: Option<usize>,
    /// Input rows per second at the family's fastest wall-clock point.
    pub best_ops_per_sec: f64,
    /// The sweep itself, in shard order.
    pub points: Vec<CrossoverPoint>,
}

/// The whole crossover report.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossoverReport {
    /// Workload seed.
    pub seed: u64,
    /// Rows in the (left) sweep table.
    pub rows: usize,
    /// Per-family sweeps.
    pub families: Vec<CrossoverFamily>,
}

/// Families the sweep covers — the same three the smoke pass shards.
fn crossover_queries() -> Vec<(&'static str, DbQuery)> {
    vec![
        ("distinct", DbQuery::Distinct { col: 0 }),
        ("groupby-max", DbQuery::GroupByMax { key_col: 0, val_col: 1 }),
        ("join", DbQuery::Join { left_key: 0, right_key: 0 }),
    ]
}

fn sweep_tables(seed: u64, rows: usize) -> (Table, Table) {
    let left = SkewedTableConfig {
        rows,
        partitions: 4,
        partition_skew: 0.6,
        keys: 200,
        key_skew: 1.0,
        seed,
    }
    .build();
    let right = SkewedTableConfig {
        rows: rows / 2,
        partitions: 2,
        partition_skew: 0.4,
        keys: 200,
        key_skew: 0.8,
        seed: seed ^ 0xFACE,
    }
    .build();
    (left, right)
}

/// Run the sweep: for each family, each shard count best-of-`reps`
/// through the `Session` front door, pinned to the interpreted barrier
/// pool at the swept shard count — pinned requests bypass the plan cache
/// and the bandit, so the counters stay deterministic, and a warm-up
/// request per point makes the routed layout resident before the first
/// timed rep, matching the smoke pass's `@shards` rows.
pub fn run_crossover(seed: u64, rows: usize, reps: usize, shard_axis: &[usize]) -> CrossoverReport {
    let (left, right) = sweep_tables(seed, rows);
    let (left, right) = (Arc::new(left), Arc::new(right));
    let session = Session::new(Cluster::default(), SessionConfig::default());
    let mut families = Vec::new();
    for (name, q) in crossover_queries() {
        let input_rows = left.rows() + if q.is_binary() { right.rows() } else { 0 };

        let mut points = Vec::with_capacity(shard_axis.len());
        for &shards in shard_axis {
            let pinned = || {
                let req = QueryRequest::new(q.clone(), Arc::clone(&left))
                    .tenant("crossover")
                    .path(ExecPath::BarrierPooled)
                    .backend(ExecBackend::Interpreted)
                    .shards(shards);
                if q.is_binary() {
                    req.with_right(Arc::clone(&right))
                } else {
                    req
                }
            };
            // Warm-up: routes and caches this (family, shard count)
            // layout so the timed reps pay execution only.
            session.run_blocking(pinned()).expect("plan fits");
            let mut best_wall = f64::INFINITY;
            let mut best_breakdown: Option<ExecBreakdown> = None;
            for _ in 0..reps.max(1) {
                let t0 = Instant::now();
                let resp = session.run_blocking(pinned()).expect("plan fits");
                let wall = t0.elapsed().as_secs_f64();
                if wall < best_wall {
                    best_wall = wall;
                    best_breakdown = Some(resp.breakdown);
                }
            }
            let breakdown = best_breakdown.expect("at least one rep");
            points.push(CrossoverPoint {
                shards,
                completion_seconds: breakdown.completion_seconds(CROSSOVER_LINK_GBPS),
                wall_seconds: best_wall,
            });
        }
        families.push(CrossoverFamily {
            name: name.to_string(),
            crossover_shards: find_crossover(&points),
            best_ops_per_sec: points
                .iter()
                .map(|p| input_rows as f64 / p.wall_seconds.max(1e-12))
                .fold(0.0, f64::max),
            points,
        });
    }
    CrossoverReport { seed, rows, families }
}

/// The smallest swept shard count above 1 whose modelled completion is
/// strictly below the 1-shard point's.
fn find_crossover(points: &[CrossoverPoint]) -> Option<usize> {
    let single = points.iter().find(|p| p.shards == 1)?;
    points
        .iter()
        .filter(|p| p.shards > 1 && p.completion_seconds < single.completion_seconds)
        .map(|p| p.shards)
        .min()
}

/// Default sweep invocation used by CI and the `crossover` experiment.
pub fn run_crossover_default(seed: u64) -> CrossoverReport {
    run_crossover(seed, 6_000, 3, &[1, 2, SMOKE_SHARDS, 8])
}

impl CrossoverReport {
    /// Serialize: one family per line, stable field order.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!(
            "  \"schema\": 1,\n  \"seed\": {},\n  \"rows\": {},\n",
            self.seed, self.rows
        ));
        out.push_str("  \"families\": [\n");
        for (i, f) in self.families.iter().enumerate() {
            let comma = if i + 1 < self.families.len() { "," } else { "" };
            let cross = match f.crossover_shards {
                Some(s) => s.to_string(),
                None => "null".to_string(),
            };
            let points: Vec<String> = f
                .points
                .iter()
                .map(|p| {
                    format!(
                        "{{\"shards\": {}, \"completion_seconds\": {:.9}, \"wall_seconds\": {:.9}}}",
                        p.shards, p.completion_seconds, p.wall_seconds
                    )
                })
                .collect();
            out.push_str(&format!(
                "    {{\"name\": \"{}\", \"crossover_shards\": {cross}, \"best_ops_per_sec\": {:.1}, \"points\": [{}]}}{comma}\n",
                f.name,
                f.best_ops_per_sec,
                points.join(", ")
            ));
        }
        out.push_str("  ]\n}\n");
        out
    }

    /// Parse what [`CrossoverReport::to_json`] writes (not a general
    /// JSON parser — the build environment has no serde_json).
    pub fn parse_json(s: &str) -> Result<CrossoverReport, String> {
        let num_field = |chunk: &str, key: &str| -> Option<f64> {
            let tag = format!("\"{key}\":");
            let at = chunk.find(&tag)? + tag.len();
            let rest = chunk[at..].trim_start();
            let end = rest.find([',', '}', ']']).unwrap_or(rest.len());
            rest[..end].trim().parse::<f64>().ok()
        };
        let str_field = |chunk: &str, key: &str| -> Option<String> {
            let tag = format!("\"{key}\": \"");
            let at = chunk.find(&tag)? + tag.len();
            let end = chunk[at..].find('"')?;
            Some(chunk[at..at + end].to_string())
        };
        let mut seed = None;
        let mut rows = None;
        let mut families = Vec::new();
        for line in s.lines() {
            if seed.is_none() && !line.contains("\"name\"") {
                seed = num_field(line, "seed").map(|v| v as u64);
            }
            if rows.is_none() && !line.contains("\"name\"") {
                rows = num_field(line, "rows").map(|v| v as usize);
            }
            let Some(name) = str_field(line, "name") else { continue };
            let crossover_shards = {
                let tag = "\"crossover_shards\":";
                let at = line
                    .find(tag)
                    .ok_or_else(|| format!("family {name}: missing crossover_shards"))?
                    + tag.len();
                let rest = line[at..].trim_start();
                if rest.starts_with("null") {
                    None
                } else {
                    let end = rest.find([',', '}']).unwrap_or(rest.len());
                    Some(
                        rest[..end]
                            .trim()
                            .parse::<usize>()
                            .map_err(|e| format!("family {name}: bad crossover_shards: {e}"))?,
                    )
                }
            };
            let best = num_field(line, "best_ops_per_sec")
                .ok_or_else(|| format!("family {name}: missing best_ops_per_sec"))?;
            let mut points = Vec::new();
            for chunk in line.split("{\"shards\":").skip(1) {
                let shards = num_field(&format!("\"shards\":{chunk}"), "shards")
                    .ok_or_else(|| format!("family {name}: bad point shards"))?
                    as usize;
                let completion = num_field(chunk, "completion_seconds")
                    .ok_or_else(|| format!("family {name}: point missing completion_seconds"))?;
                let wall = num_field(chunk, "wall_seconds")
                    .ok_or_else(|| format!("family {name}: point missing wall_seconds"))?;
                points.push(CrossoverPoint {
                    shards,
                    completion_seconds: completion,
                    wall_seconds: wall,
                });
            }
            if points.is_empty() {
                return Err(format!("family {name}: no sweep points"));
            }
            families.push(CrossoverFamily {
                name,
                crossover_shards,
                best_ops_per_sec: best,
                points,
            });
        }
        if families.is_empty() {
            return Err("no families found in crossover JSON".to_string());
        }
        Ok(CrossoverReport {
            seed: seed.ok_or("missing seed")?,
            rows: rows.ok_or("missing rows")?,
            families,
        })
    }

    /// Compare against a baseline: every baseline family must still
    /// exist, its crossover shard count must not move *up* (and must not
    /// vanish), and its best wall throughput must not drop by more than
    /// `tolerance`. Returns the violations, empty when the gate passes.
    pub fn regressions_against(&self, baseline: &CrossoverReport, tolerance: f64) -> Vec<String> {
        let mut violations = Vec::new();
        if self.seed != baseline.seed {
            violations.push(format!(
                "workload seed mismatch: run has {}, baseline has {} — not comparable",
                self.seed, baseline.seed
            ));
            return violations;
        }
        if self.rows != baseline.rows {
            violations.push(format!(
                "workload size mismatch: run has {} rows, baseline has {} — not comparable",
                self.rows, baseline.rows
            ));
            return violations;
        }
        for base in &baseline.families {
            let Some(cur) = self.families.iter().find(|f| f.name == base.name) else {
                violations.push(format!("family {} disappeared from the sweep", base.name));
                continue;
            };
            match (base.crossover_shards, cur.crossover_shards) {
                // The crossover only ever moves down: parallelism that
                // paid at N shards must keep paying at ≤ N.
                (Some(b), Some(c)) if c > b => violations.push(format!(
                    "{}: crossover moved up {b} -> {c} shards (parallelism pays later)",
                    base.name
                )),
                (Some(b), None) => violations.push(format!(
                    "{}: crossover vanished (baseline had it at {b} shards)",
                    base.name
                )),
                _ => {}
            }
            let floor = base.best_ops_per_sec * (1.0 - tolerance);
            if cur.best_ops_per_sec < floor {
                violations.push(format!(
                    "{}: best ops/sec regressed {:.0} -> {:.0} (floor {:.0})",
                    base.name, base.best_ops_per_sec, cur.best_ops_per_sec, floor
                ));
            }
        }
        violations
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick() -> CrossoverReport {
        run_crossover(5, 1_200, 1, &[1, 2, 4])
    }

    #[test]
    fn sweep_covers_every_family_and_point() {
        let r = quick();
        assert_eq!(r.families.len(), 3);
        for f in &r.families {
            assert_eq!(f.points.len(), 3, "{}", f.name);
            assert_eq!(
                f.points.iter().map(|p| p.shards).collect::<Vec<_>>(),
                vec![1, 2, 4],
                "{}",
                f.name
            );
            for p in &f.points {
                assert!(p.completion_seconds > 0.0, "{} @ {}", f.name, p.shards);
                assert!(p.wall_seconds > 0.0, "{} @ {}", f.name, p.shards);
            }
            assert!(f.best_ops_per_sec > 0.0, "{}", f.name);
            if let Some(c) = f.crossover_shards {
                assert!(c > 1, "{}: crossover at {c}", f.name);
            }
        }
    }

    #[test]
    fn crossover_is_the_smallest_winning_shard_count() {
        let points = vec![
            CrossoverPoint { shards: 1, completion_seconds: 1.0, wall_seconds: 1.0 },
            CrossoverPoint { shards: 2, completion_seconds: 1.2, wall_seconds: 1.0 },
            CrossoverPoint { shards: 4, completion_seconds: 0.7, wall_seconds: 1.0 },
            CrossoverPoint { shards: 8, completion_seconds: 0.6, wall_seconds: 1.0 },
        ];
        assert_eq!(find_crossover(&points), Some(4));
        let none = vec![
            CrossoverPoint { shards: 1, completion_seconds: 1.0, wall_seconds: 1.0 },
            CrossoverPoint { shards: 2, completion_seconds: 1.2, wall_seconds: 1.0 },
        ];
        assert_eq!(find_crossover(&none), None);
        assert_eq!(find_crossover(&none[1..]), None, "no 1-shard reference, no crossover");
    }

    #[test]
    fn json_round_trips_including_null_crossover() {
        let mut r = quick();
        r.families[1].crossover_shards = None;
        let parsed = CrossoverReport::parse_json(&r.to_json()).expect("parse back");
        assert_eq!(parsed.seed, r.seed);
        assert_eq!(parsed.rows, r.rows);
        assert_eq!(parsed.families.len(), r.families.len());
        for (a, b) in parsed.families.iter().zip(&r.families) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.crossover_shards, b.crossover_shards);
            assert!((a.best_ops_per_sec - b.best_ops_per_sec).abs() <= 0.1, "{}", a.name);
            assert_eq!(a.points.len(), b.points.len());
            for (pa, pb) in a.points.iter().zip(&b.points) {
                assert_eq!(pa.shards, pb.shards);
                assert!((pa.completion_seconds - pb.completion_seconds).abs() < 1e-6);
                assert!((pa.wall_seconds - pb.wall_seconds).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn gate_catches_upward_crossover_and_throughput_loss() {
        let base = quick();
        assert!(base.regressions_against(&base, 0.25).is_empty());
        // Crossover moving up is a violation even with a wide tolerance.
        let mut worse = base.clone();
        worse.families[0].crossover_shards =
            Some(base.families[0].crossover_shards.unwrap_or(2) * 2);
        let v = worse.regressions_against(&base, 0.9);
        if base.families[0].crossover_shards.is_some() {
            assert!(v.iter().any(|m| m.contains("crossover moved up")), "{v:?}");
        }
        // A vanished crossover is a violation when the baseline had one.
        let mut gone = base.clone();
        gone.families[0].crossover_shards = None;
        if base.families[0].crossover_shards.is_some() {
            let v = gone.regressions_against(&base, 0.9);
            assert!(v.iter().any(|m| m.contains("crossover vanished")), "{v:?}");
        }
        // Crossover moving *down* is fine.
        let mut better = base.clone();
        for f in &mut better.families {
            f.crossover_shards = Some(2);
        }
        let only_ok = better.regressions_against(&base, 0.25);
        assert!(only_ok.iter().all(|m| !m.contains("crossover")), "{only_ok:?}");
        // Throughput floor.
        let mut slow = base.clone();
        slow.families[0].best_ops_per_sec = base.families[0].best_ops_per_sec / 10.0;
        let v = slow.regressions_against(&base, 0.25);
        assert!(v.iter().any(|m| m.contains("best ops/sec regressed")), "{v:?}");
        // Different workloads never compare.
        let mut reseeded = base.clone();
        reseeded.seed ^= 1;
        assert!(reseeded.regressions_against(&base, 0.25)[0].contains("seed mismatch"));
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(CrossoverReport::parse_json("not json").is_err());
        assert!(CrossoverReport::parse_json("{}").is_err());
    }
}

//! CLI driver regenerating every table and figure of the paper, plus the
//! CI perf-smoke pass.
//!
//! ```text
//! cheetah-experiments [EXPERIMENT ...] [--full] [--csv DIR]
//!                     [--shards LIST]
//!                     [--smoke-json PATH [--smoke-baseline PATH]
//!                      [--smoke-tolerance FRAC]
//!                      [--smoke-planner-tolerance FRAC] [--smoke-seed N]]
//!
//!   EXPERIMENT        one of: table2 table3 fig5 fig6 fig7 fig8 fig9
//!                     fig10 fig11 fig12_13 ablations shards planner
//!                     runtime (default: all)
//!   --full            paper-scale streams (minutes) instead of quick
//!   --csv DIR         additionally write one CSV per report into DIR
//!   --shards LIST     comma-separated worker-shard axis for the sharded
//!                     sweeps, e.g. 1,2,4,8,16 (the default)
//!   --smoke-json PATH run the perf-smoke pass instead of experiments and
//!                     write the machine-readable report to PATH
//!   --smoke-baseline  compare the smoke report against this baseline
//!                     JSON and exit 1 on regression
//!   --smoke-tolerance allowed fractional regression (default 0.2)
//!   --smoke-planner-tolerance
//!                     allowed fractional regression of the `@planned`
//!                     rows (default 0.35 — planning adds a sampling pass
//!                     and a data-dependent layout)
//!   --smoke-streamed-tolerance
//!                     allowed fractional regression of the `@streamed`
//!                     rows (default 0.35 — the streamed runtime carries
//!                     router/worker/merge threading and batch framing)
//!   --smoke-compiled-tolerance
//!                     allowed fractional regression of the `@compiled`
//!                     rows (default 0.35 — the fused kernels share the
//!                     pool's threading variance)
//!   --smoke-serving-tolerance
//!                     allowed fractional regression of the `@serving`
//!                     rows (default 0.35 — the multi-tenant burst adds
//!                     session-scheduler threading on top of the pool's)
//!   --smoke-compiled-speedup
//!                     required within-run ops/s speedup of the
//!                     `@compiled` rows over their interpreted `@shards`
//!                     siblings: distinct plus at least one aggregate
//!                     family must reach it (default 1.5; 0 disables)
//!   --smoke-seed      workload seed of the smoke pass (default 42)
//!   --crossover-json PATH
//!                     run the crossover scale-sweep instead of
//!                     experiments and write the report to PATH
//!   --crossover-baseline PATH
//!                     compare the sweep against this baseline JSON and
//!                     exit 1 when a family's crossover shard count
//!                     moved up or its best throughput regressed
//!   --crossover-tolerance FRAC
//!                     allowed fractional best-throughput regression of
//!                     the crossover gate (default 0.35 — wall clock on
//!                     shared CI runners; the crossover shard count
//!                     itself is gated exactly, no tolerance)
//!   --trace           run one traced sample query through the Session
//!                     front door and pretty-print its lifecycle span
//!                     tree (admit → queue → plan → choose → execute
//!                     {worker per shard, merge} → respond), followed by
//!                     the JSON-lines export and the session registry
//!                     snapshot; `--smoke-seed` seeds the table
//! ```

use cheetah_bench::crossover::{run_crossover_default, CrossoverReport};
use cheetah_bench::experiments;
use cheetah_bench::smoke::{run_smoke, SmokeReport};
use cheetah_bench::{RunCtx, Scale};
use cheetah_db::DbQuery;
use cheetah_serve::{QueryRequest, Session};
use cheetah_telemetry::{export_jsonl, render};
use cheetah_workloads::SkewedTableConfig;
use std::io::Write;
use std::sync::Arc;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut csv_dir: Option<String> = None;
    let mut shards: Option<Vec<usize>> = None;
    let mut smoke_json: Option<String> = None;
    let mut smoke_baseline: Option<String> = None;
    let mut smoke_tolerance = 0.2f64;
    let mut smoke_planner_tolerance = 0.35f64;
    let mut smoke_streamed_tolerance = 0.35f64;
    let mut smoke_compiled_tolerance = 0.35f64;
    let mut smoke_serving_tolerance = 0.35f64;
    let mut smoke_compiled_speedup = 1.5f64;
    let mut smoke_seed = 42u64;
    let mut crossover_json: Option<String> = None;
    let mut crossover_baseline: Option<String> = None;
    let mut crossover_tolerance = 0.35f64;
    let mut trace_mode = false;
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    let value_of = |args: &[String], i: usize, flag: &str| -> String {
        args.get(i).cloned().unwrap_or_else(|| {
            eprintln!("{flag} needs a value");
            std::process::exit(2);
        })
    };
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::Full,
            "--csv" => {
                i += 1;
                csv_dir = Some(value_of(&args, i, "--csv"));
            }
            "--shards" => {
                i += 1;
                let list = value_of(&args, i, "--shards");
                let parsed: Result<Vec<usize>, _> =
                    list.split(',').map(|s| s.trim().parse::<usize>()).collect();
                match parsed {
                    Ok(v) if !v.is_empty() && v.iter().all(|&n| n > 0) => shards = Some(v),
                    _ => {
                        eprintln!("--shards needs a comma-separated list of positive ints");
                        std::process::exit(2);
                    }
                }
            }
            "--smoke-json" => {
                i += 1;
                smoke_json = Some(value_of(&args, i, "--smoke-json"));
            }
            "--smoke-baseline" => {
                i += 1;
                smoke_baseline = Some(value_of(&args, i, "--smoke-baseline"));
            }
            "--smoke-tolerance" => {
                i += 1;
                let parsed: f64 =
                    value_of(&args, i, "--smoke-tolerance").parse().unwrap_or(f64::NAN);
                // NaN would make every floor comparison false and silently
                // disable the gate; reject anything outside [0, 1).
                if !parsed.is_finite() || !(0.0..1.0).contains(&parsed) {
                    eprintln!("--smoke-tolerance needs a fraction in [0, 1), e.g. 0.2");
                    std::process::exit(2);
                }
                smoke_tolerance = parsed;
            }
            "--smoke-planner-tolerance" => {
                i += 1;
                let parsed: f64 =
                    value_of(&args, i, "--smoke-planner-tolerance").parse().unwrap_or(f64::NAN);
                if !parsed.is_finite() || !(0.0..1.0).contains(&parsed) {
                    eprintln!("--smoke-planner-tolerance needs a fraction in [0, 1), e.g. 0.35");
                    std::process::exit(2);
                }
                smoke_planner_tolerance = parsed;
            }
            "--smoke-streamed-tolerance" => {
                i += 1;
                let parsed: f64 =
                    value_of(&args, i, "--smoke-streamed-tolerance").parse().unwrap_or(f64::NAN);
                if !parsed.is_finite() || !(0.0..1.0).contains(&parsed) {
                    eprintln!("--smoke-streamed-tolerance needs a fraction in [0, 1), e.g. 0.35");
                    std::process::exit(2);
                }
                smoke_streamed_tolerance = parsed;
            }
            "--smoke-compiled-tolerance" => {
                i += 1;
                let parsed: f64 =
                    value_of(&args, i, "--smoke-compiled-tolerance").parse().unwrap_or(f64::NAN);
                if !parsed.is_finite() || !(0.0..1.0).contains(&parsed) {
                    eprintln!("--smoke-compiled-tolerance needs a fraction in [0, 1), e.g. 0.35");
                    std::process::exit(2);
                }
                smoke_compiled_tolerance = parsed;
            }
            "--smoke-serving-tolerance" => {
                i += 1;
                let parsed: f64 =
                    value_of(&args, i, "--smoke-serving-tolerance").parse().unwrap_or(f64::NAN);
                if !parsed.is_finite() || !(0.0..1.0).contains(&parsed) {
                    eprintln!("--smoke-serving-tolerance needs a fraction in [0, 1), e.g. 0.35");
                    std::process::exit(2);
                }
                smoke_serving_tolerance = parsed;
            }
            "--smoke-compiled-speedup" => {
                i += 1;
                let parsed: f64 =
                    value_of(&args, i, "--smoke-compiled-speedup").parse().unwrap_or(f64::NAN);
                // 0 disables the within-run gate; anything else must be a
                // sane multiplier.
                if !parsed.is_finite() || parsed < 0.0 {
                    eprintln!("--smoke-compiled-speedup needs a non-negative factor, e.g. 1.5");
                    std::process::exit(2);
                }
                smoke_compiled_speedup = parsed;
            }
            "--crossover-json" => {
                i += 1;
                crossover_json = Some(value_of(&args, i, "--crossover-json"));
            }
            "--crossover-baseline" => {
                i += 1;
                crossover_baseline = Some(value_of(&args, i, "--crossover-baseline"));
            }
            "--crossover-tolerance" => {
                i += 1;
                let parsed: f64 =
                    value_of(&args, i, "--crossover-tolerance").parse().unwrap_or(f64::NAN);
                if !parsed.is_finite() || !(0.0..1.0).contains(&parsed) {
                    eprintln!("--crossover-tolerance needs a fraction in [0, 1), e.g. 0.35");
                    std::process::exit(2);
                }
                crossover_tolerance = parsed;
            }
            "--trace" => trace_mode = true,
            "--smoke-seed" => {
                i += 1;
                smoke_seed = value_of(&args, i, "--smoke-seed").parse().unwrap_or_else(|_| {
                    eprintln!("--smoke-seed needs an integer");
                    std::process::exit(2);
                });
            }
            "--help" | "-h" => {
                println!(
                    "usage: cheetah-experiments [EXPERIMENT ...] [--full] [--csv DIR] \
                     [--shards LIST]"
                );
                println!(
                    "       cheetah-experiments --smoke-json PATH [--smoke-baseline PATH] \
                     [--smoke-tolerance FRAC] [--smoke-planner-tolerance FRAC] \
                     [--smoke-streamed-tolerance FRAC] [--smoke-compiled-tolerance FRAC] \
                     [--smoke-serving-tolerance FRAC] [--smoke-compiled-speedup FACTOR] \
                     [--smoke-seed N]"
                );
                println!(
                    "       cheetah-experiments --crossover-json PATH \
                     [--crossover-baseline PATH] [--crossover-tolerance FRAC] [--smoke-seed N]"
                );
                println!("       cheetah-experiments --trace [--smoke-seed N]");
                println!("experiments:");
                for (id, _) in experiments::all() {
                    println!("  {id}");
                }
                return;
            }
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }

    if trace_mode {
        run_trace_mode(smoke_seed);
        return;
    }
    if let Some(path) = smoke_json {
        run_smoke_mode(
            &path,
            smoke_baseline.as_deref(),
            smoke_tolerance,
            smoke_planner_tolerance,
            smoke_streamed_tolerance,
            smoke_compiled_tolerance,
            smoke_serving_tolerance,
            smoke_compiled_speedup,
            smoke_seed,
        );
        return;
    }
    if let Some(path) = crossover_json {
        run_crossover_mode(&path, crossover_baseline.as_deref(), crossover_tolerance, smoke_seed);
        return;
    }

    let mut ctx = RunCtx::new(scale);
    if let Some(s) = shards {
        ctx.shards = s;
    }
    let registry = experiments::all();
    let selected: Vec<_> = if wanted.is_empty() {
        registry
    } else {
        let known: Vec<&str> = registry.iter().map(|(id, _)| *id).collect();
        for w in &wanted {
            if !known.contains(&w.as_str()) {
                eprintln!("unknown experiment `{w}`; known: {known:?}");
                std::process::exit(2);
            }
        }
        registry.into_iter().filter(|(id, _)| wanted.iter().any(|w| w == id)).collect()
    };
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    for (id, runner) in selected {
        eprintln!("running {id} ({:?})...", ctx.scale);
        let t0 = std::time::Instant::now();
        let reports = runner(&ctx);
        for report in &reports {
            println!("{}", report.render());
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}.csv", report.id);
                let mut f = std::fs::File::create(&path).expect("create csv");
                f.write_all(report.to_csv().as_bytes()).expect("write csv");
                eprintln!("wrote {path}");
            }
        }
        eprintln!("{id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
}

/// The `--trace` demo: push one query through the `Session` front door
/// and show all three faces of its telemetry — the pretty-printed
/// lifecycle span tree, the JSON-lines export, and the registry
/// snapshot the same request fed.
fn run_trace_mode(seed: u64) {
    let table = Arc::new(
        SkewedTableConfig {
            rows: 6_000,
            partitions: 4,
            partition_skew: 0.6,
            keys: 200,
            key_skew: 1.0,
            seed,
        }
        .build(),
    );
    let session = Session::with_defaults();
    let q = DbQuery::GroupByMax { key_col: 0, val_col: 1 };
    let resp = session
        .run_blocking(QueryRequest::new(q, table).tenant("demo").shards(4))
        .expect("plan fits");
    let tree = resp.trace.expect("the session traces every request");
    println!("lifecycle span tree (arm {}):", resp.arm.label());
    println!("{}", render(&tree));
    println!("spans as JSON lines:");
    print!("{}", export_jsonl(&tree, false));
    println!();
    println!("session registry after the request:");
    print!("{}", session.registry().snapshot().render());
}

/// The CI perf-smoke path: measure, write JSON, optionally gate against a
/// baseline. Exit code 1 = regression, 2 = usage/IO error.
#[allow(clippy::too_many_arguments)]
fn run_smoke_mode(
    out_path: &str,
    baseline_path: Option<&str>,
    tolerance: f64,
    planner_tolerance: f64,
    streamed_tolerance: f64,
    compiled_tolerance: f64,
    serving_tolerance: f64,
    compiled_speedup: f64,
    seed: u64,
) {
    eprintln!("running perf smoke (seed {seed})...");
    let report = run_smoke(seed, 6_000, 3);
    let json = report.to_json();
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("wrote {out_path}");
    println!("{json}");
    // Within-run gate first: compiled rows vs their interpreted siblings
    // measured in this very report, so it holds on any machine without a
    // baseline at all.
    if compiled_speedup > 0.0 {
        let violations = report.compiled_speedup_violations(compiled_speedup);
        if !violations.is_empty() {
            eprintln!("compiled speedup gate FAILED (need {compiled_speedup:.2}x):");
            for v in &violations {
                eprintln!("  - {v}");
            }
            std::process::exit(1);
        }
        eprintln!("compiled speedup gate OK (>= {compiled_speedup:.2}x within-run)");
    }
    let Some(baseline_path) = baseline_path else {
        return;
    };
    let baseline_text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = SmokeReport::parse_json(&baseline_text).unwrap_or_else(|e| {
        eprintln!("cannot parse baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let violations = report.regressions_against_with(
        &baseline,
        tolerance,
        planner_tolerance,
        streamed_tolerance,
        compiled_tolerance,
        serving_tolerance,
    );
    if violations.is_empty() {
        eprintln!(
            "perf smoke OK: {} families within {:.0}% of {baseline_path} ({:.0}% for @planned, \
             {:.0}% for @streamed, {:.0}% for @compiled, {:.0}% for @serving)",
            report.families.len(),
            tolerance * 100.0,
            planner_tolerance * 100.0,
            streamed_tolerance * 100.0,
            compiled_tolerance * 100.0,
            serving_tolerance * 100.0
        );
    } else {
        eprintln!("perf smoke FAILED vs {baseline_path}:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        eprintln!();
        eprintln!("per-row before/after (baseline = {baseline_path}):");
        eprint!("{}", report.comparison_table(&baseline));
        std::process::exit(1);
    }
}

/// The CI crossover path: sweep, write JSON, optionally gate against a
/// baseline. Exit code 1 = regression, 2 = usage/IO error.
fn run_crossover_mode(out_path: &str, baseline_path: Option<&str>, tolerance: f64, seed: u64) {
    eprintln!("running crossover sweep (seed {seed})...");
    let report = run_crossover_default(seed);
    let json = report.to_json();
    std::fs::write(out_path, &json).unwrap_or_else(|e| {
        eprintln!("cannot write {out_path}: {e}");
        std::process::exit(2);
    });
    eprintln!("wrote {out_path}");
    println!("{json}");
    let Some(baseline_path) = baseline_path else {
        return;
    };
    let baseline_text = std::fs::read_to_string(baseline_path).unwrap_or_else(|e| {
        eprintln!("cannot read baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let baseline = CrossoverReport::parse_json(&baseline_text).unwrap_or_else(|e| {
        eprintln!("cannot parse baseline {baseline_path}: {e}");
        std::process::exit(2);
    });
    let violations = report.regressions_against(&baseline, tolerance);
    if violations.is_empty() {
        eprintln!(
            "crossover OK: {} families, crossover points no later than {baseline_path}, \
             throughput within {:.0}%",
            report.families.len(),
            tolerance * 100.0
        );
    } else {
        eprintln!("crossover FAILED vs {baseline_path}:");
        for v in &violations {
            eprintln!("  - {v}");
        }
        std::process::exit(1);
    }
}

//! CLI driver regenerating every table and figure of the paper.
//!
//! ```text
//! cheetah-experiments [EXPERIMENT ...] [--full] [--csv DIR]
//!
//!   EXPERIMENT  one of: table2 table3 fig5 fig6 fig7 fig8 fig9 fig10
//!               fig11 fig12_13 (default: all)
//!   --full      paper-scale streams (minutes) instead of quick (seconds)
//!   --csv DIR   additionally write one CSV per report into DIR
//! ```

use cheetah_bench::experiments;
use cheetah_bench::Scale;
use std::io::Write;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut scale = Scale::Quick;
    let mut csv_dir: Option<String> = None;
    let mut wanted: Vec<String> = Vec::new();
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--full" => scale = Scale::Full,
            "--csv" => {
                i += 1;
                csv_dir = Some(args.get(i).cloned().unwrap_or_else(|| {
                    eprintln!("--csv needs a directory");
                    std::process::exit(2);
                }));
            }
            "--help" | "-h" => {
                println!("usage: cheetah-experiments [EXPERIMENT ...] [--full] [--csv DIR]");
                println!("experiments:");
                for (id, _) in experiments::all() {
                    println!("  {id}");
                }
                return;
            }
            other => wanted.push(other.to_string()),
        }
        i += 1;
    }
    let registry = experiments::all();
    let selected: Vec<_> = if wanted.is_empty() {
        registry
    } else {
        let known: Vec<&str> = registry.iter().map(|(id, _)| *id).collect();
        for w in &wanted {
            if !known.contains(&w.as_str()) {
                eprintln!("unknown experiment `{w}`; known: {known:?}");
                std::process::exit(2);
            }
        }
        registry.into_iter().filter(|(id, _)| wanted.iter().any(|w| w == id)).collect()
    };
    if let Some(dir) = &csv_dir {
        std::fs::create_dir_all(dir).expect("create csv dir");
    }
    for (id, runner) in selected {
        eprintln!("running {id} ({scale:?})...");
        let t0 = std::time::Instant::now();
        let reports = runner(scale);
        for report in &reports {
            println!("{}", report.render());
            if let Some(dir) = &csv_dir {
                let path = format!("{dir}/{}.csv", report.id);
                let mut f = std::fs::File::create(&path).expect("create csv");
                f.write_all(report.to_csv().as_bytes()).expect("write csv");
                eprintln!("wrote {path}");
            }
        }
        eprintln!("{id} done in {:.1}s", t0.elapsed().as_secs_f64());
    }
}

//! Criterion benchmarks of the sharded execution layer: the same query on
//! the same data at 1/2/4/8 shards, hash vs range routing. The interesting
//! curve is worker-phase shrinkage vs merge overhead — the §4.6 trade the
//! `shards` experiment sweeps at report granularity.

use cheetah_core::ShardPartitioner;
use cheetah_db::{Cluster, DbQuery, ShardSpec};
use cheetah_workloads::SkewedTableConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_sharding(c: &mut Criterion) {
    let table = SkewedTableConfig {
        rows: 30_000,
        partitions: 8,
        partition_skew: 1.0,
        keys: 300,
        key_skew: 1.1,
        seed: 0xBE7C,
    }
    .build();
    let cluster = Cluster::default();
    let q = DbQuery::GroupByMax { key_col: 0, val_col: 1 };

    let mut g = c.benchmark_group("sharding");
    g.sample_size(10);
    g.bench_function("unsharded", |b| {
        b.iter(|| black_box(cluster.run_cheetah(&q, &table, None).unwrap()))
    });
    for shards in [1usize, 2, 4, 8] {
        let spec = ShardSpec::new(shards, ShardPartitioner::Hash);
        g.bench_function(format!("hash_{shards}shards"), |b| {
            b.iter(|| black_box(cluster.run_cheetah_sharded(&q, &table, None, &spec).unwrap()))
        });
    }
    let range = ShardSpec::new(4, ShardPartitioner::Range);
    g.bench_function("range_4shards", |b| {
        b.iter(|| black_box(cluster.run_cheetah_sharded(&q, &table, None, &range).unwrap()))
    });
    g.finish();
}

criterion_group!(benches, bench_sharding);
criterion_main!(benches);

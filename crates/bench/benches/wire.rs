//! Criterion microbenchmarks: wire-format emit/parse throughput (the
//! CWorker's serialization cost — §8.2.1 attributes Cheetah's overhead on
//! cheap queries exactly here).

use cheetah_net::{DataPacket, Packet};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_wire(c: &mut Criterion) {
    let mut g = c.benchmark_group("wire");
    g.throughput(Throughput::Elements(1));

    let data = Packet::Data(DataPacket { fid: 3, seq: 123_456, values: vec![1, 2] });
    g.bench_function("emit_data_2vals", |b| {
        b.iter(|| black_box(data.emit()));
    });

    let bytes = data.emit();
    g.bench_function("parse_data_2vals", |b| {
        b.iter(|| black_box(Packet::parse(bytes.clone()).unwrap()));
    });

    let ack = Packet::Ack(cheetah_net::AckPacket {
        fid: 3,
        seq: 9,
        source: cheetah_net::AckSource::SwitchPruned,
    });
    g.bench_function("emit_ack", |b| {
        b.iter(|| black_box(ack.emit()));
    });

    let corrupted = {
        let mut v = data.emit().to_vec();
        v[5] ^= 0xFF;
        bytes::Bytes::from(v)
    };
    g.bench_function("reject_corrupted", |b| {
        b.iter(|| black_box(Packet::parse(corrupted.clone()).unwrap_err()));
    });

    g.finish();
}

criterion_group!(benches, bench_wire);
criterion_main!(benches);

//! Criterion microbenchmarks: per-entry throughput of each pruning
//! algorithm (the simulator's analogue of the switch's packets-per-second
//! budget — in hardware this cost is paid by the pipeline, not a CPU).

use cheetah_core::{
    DistinctConfig, DistinctPruner, EvictionPolicy, GroupByConfig, GroupByPruner, SkylineConfig,
    SkylinePolicy, SkylinePruner, StandalonePruner, TopNDetConfig, TopNDetPruner, TopNRandConfig,
    TopNRandPruner,
};
use cheetah_switch::{ResourceLedger, SwitchProfile};
use cheetah_workloads::streams;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const N: usize = 10_000;

fn ledger() -> ResourceLedger {
    ResourceLedger::new(SwitchProfile::tofino2())
}

fn bench_pruners(c: &mut Criterion) {
    let mut g = c.benchmark_group("pruners");
    g.throughput(Throughput::Elements(N as u64));

    let values = streams::duplicates_stream(N, 500, 1);
    g.bench_function("distinct_lru_w2_d4096", |b| {
        let mut p = StandalonePruner::new(
            DistinctPruner::build(DistinctConfig::paper_default(), &mut ledger()).unwrap(),
        );
        b.iter(|| {
            for &v in &values {
                black_box(p.offer(&[v]).unwrap());
            }
        })
    });

    g.bench_function("distinct_fifo_w2_d4096", |b| {
        let cfg =
            DistinctConfig { policy: EvictionPolicy::Fifo, ..DistinctConfig::paper_default() };
        let mut p = StandalonePruner::new(DistinctPruner::build(cfg, &mut ledger()).unwrap());
        b.iter(|| {
            for &v in &values {
                black_box(p.offer(&[v]).unwrap());
            }
        })
    });

    let rand_vals = streams::random_values(N, 1 << 31, 2);
    g.bench_function("topn_det_n250_w4", |b| {
        let mut p = StandalonePruner::new(
            TopNDetPruner::build(TopNDetConfig::paper_default(), &mut ledger()).unwrap(),
        );
        b.iter(|| {
            for &v in &rand_vals {
                black_box(p.offer(&[v]).unwrap());
            }
        })
    });

    g.bench_function("topn_rand_w4_d4096", |b| {
        let mut p = StandalonePruner::new(
            TopNRandPruner::build(TopNRandConfig::paper_default(), &mut ledger()).unwrap(),
        );
        b.iter(|| {
            for &v in &rand_vals {
                black_box(p.offer(&[v]).unwrap());
            }
        })
    });

    let kv = streams::keyed_values(N, 500, 1 << 20, 3);
    g.bench_function("groupby_max_w8_d4096", |b| {
        let mut p = StandalonePruner::new(
            GroupByPruner::build(GroupByConfig::paper_default(), &mut ledger()).unwrap(),
        );
        b.iter(|| {
            for pair in &kv {
                black_box(p.offer(pair).unwrap());
            }
        })
    });

    let pts = streams::points_stream(N, 2, 1 << 16, 4);
    g.bench_function("skyline_sum_w10", |b| {
        let mut p = StandalonePruner::new(
            SkylinePruner::build(SkylineConfig::paper_default(SkylinePolicy::Sum), &mut ledger())
                .unwrap(),
        );
        b.iter(|| {
            for pt in &pts {
                black_box(p.offer(pt).unwrap());
            }
        })
    });

    g.finish();
}

criterion_group!(benches, bench_pruners);
criterion_main!(benches);

//! Criterion microbenchmarks: the multi-query pipeline (§6 packing) and
//! the reliability-protocol hot path.

use cheetah_core::planner::PackedQueries;
use cheetah_core::{
    AggKind, BoolExpr, CmpOp, DistinctConfig, EvictionPolicy, FilterConfig, GroupByConfig,
    Predicate, QuerySpec,
};
use cheetah_net::{SwitchFlow, WorkerFlow};
use cheetah_switch::SwitchProfile;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn packed() -> PackedQueries {
    let specs = vec![
        QuerySpec::Filter(FilterConfig {
            atoms: vec![cheetah_core::AtomSpec::Switch(Predicate {
                col: 0,
                op: CmpOp::Lt,
                constant: 1 << 30,
            })],
            expr: BoolExpr::Atom(0),
            external_mode: cheetah_core::ExternalMode::Tautology,
        }),
        QuerySpec::Distinct(DistinctConfig {
            rows: 1024,
            cols: 2,
            policy: EvictionPolicy::Lru,
            fingerprint: None,
            seed: 1,
        }),
        QuerySpec::GroupBy(GroupByConfig {
            rows: 1024,
            cols: 4,
            agg: AggKind::Max,
            key_bits: 31,
            seed: 2,
        }),
    ];
    PackedQueries::pack(&specs, SwitchProfile::tofino2()).unwrap()
}

fn bench_pipeline(c: &mut Criterion) {
    let mut g = c.benchmark_group("pipeline");
    g.throughput(Throughput::Elements(1));

    g.bench_function("process_bound_flow", |b| {
        let mut p = packed();
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(p.pipeline.process(1, &[x]).unwrap());
        })
    });

    g.bench_function("process_all_select_bit", |b| {
        // §6 semantics: every program sees the packet.
        let mut p = packed();
        let mut x = 0u64;
        b.iter(|| {
            x = x.wrapping_add(0x9E37_79B9);
            black_box(p.pipeline.process_all(2, &[x, x >> 7]).unwrap());
        })
    });

    g.bench_function("switch_flow_classify", |b| {
        let mut f = SwitchFlow::new();
        let mut seq = 0u64;
        b.iter(|| {
            seq += 1;
            black_box(f.classify(seq));
        })
    });

    g.bench_function("worker_window_cycle", |b| {
        b.iter(|| {
            let mut w = WorkerFlow::new(0, 64, 32);
            loop {
                let s = w.sendable();
                if s.is_empty() && w.all_acked() {
                    break;
                }
                for seq in s {
                    w.on_ack(seq);
                }
            }
            black_box(w.all_acked())
        })
    });

    g.finish();
}

criterion_group!(benches, bench_pipeline);
criterion_main!(benches);

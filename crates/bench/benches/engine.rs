//! Criterion benchmarks: end-to-end query execution, baseline vs Cheetah
//! path, on a small Big Data sample. These are the timing source behind
//! the shape of Figure 5: Cheetah's advantage is worker-compute removal.

use cheetah_db::{Cluster, DbQuery};
use cheetah_workloads::bigdata::BigDataConfig;
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn bench_engine(c: &mut Criterion) {
    let bd = BigDataConfig { uservisits_rows: 30_000, ..Default::default() };
    let table = bd.uservisits();
    let cluster = Cluster::default();
    let queries = [
        ("distinct", DbQuery::Distinct { col: BigDataConfig::UV_USER_AGENT }),
        (
            "groupby_max",
            DbQuery::GroupByMax {
                key_col: BigDataConfig::UV_USER_AGENT,
                val_col: BigDataConfig::UV_AD_REVENUE,
            },
        ),
        ("topn", DbQuery::TopN { order_col: BigDataConfig::UV_AD_REVENUE, n: 250 }),
    ];

    let mut g = c.benchmark_group("engine");
    g.sample_size(10);
    for (name, q) in &queries {
        g.bench_function(format!("baseline_{name}"), |b| {
            b.iter(|| black_box(cluster.run_baseline(q, &table, None)))
        });
        g.bench_function(format!("cheetah_{name}"), |b| {
            b.iter(|| black_box(cluster.run_cheetah(q, &table, None).unwrap()))
        });
    }
    g.finish();
}

criterion_group!(benches, bench_engine);
criterion_main!(benches);

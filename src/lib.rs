//! # Cheetah — accelerating database queries with switch pruning
//!
//! A from-scratch Rust reproduction of *"Cheetah: Accelerating Database
//! Queries with Switch Pruning"* (SIGCOMM 2019; full version
//! arXiv:2004.05076). Cheetah offloads part of query processing to a
//! programmable switch sitting between database workers and the master:
//! the switch **prunes** — drops entries that provably cannot affect the
//! query output — and the master completes the unchanged query on the
//! survivors, so `Q(A_Q(D)) = Q(D)` by construction.
//!
//! This facade crate re-exports the eight subsystems:
//!
//! * [`switch`] — a PISA dataplane simulator that *enforces* the resource
//!   constraints the paper designs around (stages, ALUs, SRAM, TCAM, PHV,
//!   one register access per packet, no multiply/divide/log);
//! * [`algorithms`] — the pruning algorithms themselves (filtering,
//!   DISTINCT, TOP N, GROUP BY, JOIN, HAVING, SKYLINE) plus the planner
//!   and the paper's closed-form analysis;
//! * [`db`] — a columnar, partition-parallel mini query engine with a
//!   Spark-like worker/master split and a Cheetah execution path;
//! * [`net`] — the Cheetah wire format and the §7.2 reliability protocol
//!   (the switch ACKs what it prunes) over a fault-injected link
//!   simulator;
//! * [`runtime`] — the event-driven streamed shard runtime: overlapped
//!   incremental master merge, cross-shard survivor batching, and
//!   supervised mid-run re-planning;
//! * [`workloads`] — seeded generators for the Big Data benchmark, a
//!   TPC-H subset, and the pruning-rate simulation streams;
//! * [`serve`] — the multi-tenant serving plane: the
//!   [`QueryRequest`](serve::QueryRequest)/[`Session`](serve::Session)
//!   front door with admission control, per-tenant fair scheduling, a
//!   plan cache, and bandit routing over the execution paths;
//! * [`telemetry`] — lock-light always-on observability: a metrics
//!   registry (atomic counters/gauges, log-bucketed histograms) and
//!   per-query lifecycle span traces, carried through the session, the
//!   worker pool, the streamed runtime, and the fabric retransmit path.
//!
//! ## Quickstart
//!
//! ```
//! use cheetah::db::{Cluster, DbQuery, TableBuilder, Value, DataType};
//! use cheetah::serve::{QueryRequest, Session, SessionConfig};
//! use std::sync::Arc;
//!
//! // A tiny table of (seller, price) rows — the paper's running example.
//! let mut b = TableBuilder::new(
//!     "products",
//!     vec![("seller".into(), DataType::Str), ("price".into(), DataType::Int)],
//!     2,
//! );
//! for (s, p) in [("McCheetah", 4), ("Papizza", 7), ("McCheetah", 2), ("JellyFish", 5)] {
//!     b.push_row(vec![Value::Str(s.into()), Value::Int(p)]);
//! }
//! let table = Arc::new(b.build());
//!
//! // SELECT DISTINCT seller — the Spark-like baseline vs the serving
//! // plane's switch-pruned path (the session picks the execution twin).
//! let cluster = Cluster::default();
//! let q = DbQuery::Distinct { col: 0 };
//! let spark = cluster.run_baseline(&q, &table, None);
//! let session = Session::new(cluster, SessionConfig::default());
//! let resp = session
//!     .run_blocking(QueryRequest::new(q, table).tenant("quickstart"))
//!     .unwrap();
//! assert_eq!(spark.output, resp.output); // the pruning contract
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and
//! `cheetah-experiments` (in `crates/bench`) for the harness regenerating
//! every table and figure of the paper.

#![forbid(unsafe_code)]

/// The PISA switch simulator (`cheetah-switch`).
pub use cheetah_switch as switch;

/// The pruning algorithms and planner (`cheetah-core`).
pub use cheetah_core as algorithms;

/// The mini query engine (`cheetah-db`).
pub use cheetah_db as db;

/// Wire format, reliability protocol, link simulator (`cheetah-net`).
pub use cheetah_net as net;

/// The streamed shard runtime (`cheetah-runtime`).
pub use cheetah_runtime as runtime;

/// Benchmark data generators (`cheetah-workloads`).
pub use cheetah_workloads as workloads;

/// The multi-tenant serving plane (`cheetah-serve`).
pub use cheetah_serve as serve;

/// Metrics, spans, and the query-lifecycle trace plane
/// (`cheetah-telemetry`).
pub use cheetah_telemetry as telemetry;
